"""slice-dangling-source: a Slice must never outlive its backing bytes.

Slice's implicit conversions from std::string (src/util/slice.h) make
dangling one typo away: `Slice s = key.ToString();` compiles, points into
a temporary destroyed at the end of the full expression, and reads freed
memory on first use. The type-level guard (`Slice(std::string&&) =
delete`) stops plain temporaries; this check covers what overload
resolution cannot see:

  * a named Slice (local, member, or returned) initialized or assigned
    from an expression producing a *temporary* std::string — .ToString(),
    .substr(), .str(), std::to_string(), an explicit std::string(...)
    temporary, string concatenation with `+`, or a call to a project
    function whose declared return type is std::string by value;
  * a function returning Slice built from (or implicitly converting) a
    local std::string that dies at function exit.

Binding a Slice *argument* to a temporary is fine — the temporary lives
until the end of the full expression, which is the LevelDB calling
convention — so only bindings that outlive the expression are flagged:
declarations with initializers, assignments, and returns.
"""

from ..lexer import match_paren
from ..project import Finding

RULE = "slice-dangling-source"

_TEMP_METHODS = {"ToString", "substr", "str"}
_TEMP_FREE = {"to_string"}


def _normalized_return(fn):
    return fn.return_type.replace(" ", "")


def _returns_string_by_value(project, name):
    defs = project.resolve(name)
    if not defs:
        return False
    rets = {_normalized_return(d) for d in defs}
    return rets == {"std::string"} or rets == {"string"}


def _producer(project, tokens, lo, hi):
    """Why tokens[lo:hi] produces a temporary std::string, or None."""
    depth = 0
    for k in range(lo, hi):
        t = tokens[k]
        if t.text in ("(", "[", "{"):
            depth += 1
            continue
        if t.text in (")", "]", "}"):
            depth -= 1
            continue
        if t.kind != "ident":
            # Top-level concatenation with a string-literal operand.
            if t.text == "+" and depth == 0:
                for m in range(lo, hi):
                    if tokens[m].kind == "str":
                        return "std::string concatenation with '+'"
            continue
        nxt = tokens[k + 1].text if k + 1 < hi else ""
        prev = tokens[k - 1].text if k > lo else ""
        if nxt != "(":
            continue
        if t.text in _TEMP_METHODS and prev in (".", "->"):
            return f".{t.text}() temporary"
        if t.text in _TEMP_FREE:
            return f"std::{t.text}() temporary"
        if t.text == "string" and prev == "::":
            return "explicit std::string(...) temporary"
        if prev not in (".", "->", "::") and _returns_string_by_value(
                project, t.text):
            return f"call to {t.text}() which returns std::string by value"
    return None


def _statements(tokens, lo, hi):
    """Yield (start, end) token ranges of statements in tokens[lo:hi],
    descending into nested blocks."""
    k = lo
    start = lo
    while k < hi:
        t = tokens[k].text
        if t == "{":
            close = match_paren(tokens, k)
            yield from _statements(tokens, k + 1, close)
            k = close + 1
            start = k
            continue
        if t == "(":
            k = match_paren(tokens, k) + 1
            continue
        if t == ";":
            if k > start:
                yield (start, k)
            k += 1
            start = k
            continue
        k += 1
    if hi > start:
        yield (start, hi)


def _locals_of(tokens, lo, hi):
    """Textual local declarations: name -> type ('std::string' | 'Slice').
    References, pointers, and parameters are excluded."""
    out = {}
    for (s, e) in _statements(tokens, lo, hi):
        texts = [t.text for t in tokens[s:e]]
        if len(texts) >= 4 and texts[0] == "std" and texts[1] == "::" and \
                texts[2] == "string":
            k = 3
            if k < len(texts) and texts[k] in ("&", "*"):
                continue
            if k < len(texts) and tokens[s + k].kind == "ident":
                out[texts[k]] = ("std::string", tokens[s + k].line)
        elif len(texts) >= 2 and texts[0] == "Slice":
            if tokens[s + 1].kind == "ident":
                out[texts[1]] = ("Slice", tokens[s + 1].line)
    return out


def run(project):
    findings = []
    for sf in project.files:
        toks = sf.tokens
        for fn in sf.functions:
            lo, hi = fn.body_start + 1, fn.body_end
            local_vars = _locals_of(toks, lo, hi)
            string_locals = {n for n, (t, _l) in local_vars.items()
                             if t == "std::string"}
            slice_locals = {n for n, (t, _l) in local_vars.items()
                            if t == "Slice"}
            returns_slice = _normalized_return(fn) == "Slice"
            for (s, e) in _statements(toks, lo, hi):
                texts = [t.text for t in toks[s:e]]
                line = toks[s].line
                # --- Slice declaration with initializer -----------------
                if texts and texts[0] == "Slice" and len(texts) > 2 and \
                        toks[s + 1].kind == "ident":
                    name = texts[1]
                    init_lo = None
                    if texts[2] == "=":
                        init_lo = s + 3
                    elif texts[2] in ("(", "{"):
                        init_lo = s + 3
                        e = match_paren(toks, s + 2)
                    if init_lo is not None:
                        why = _producer(project, toks, init_lo, e)
                        if why:
                            findings.append(Finding(
                                RULE, sf.path, line,
                                f"in {fn.qualname}: Slice '{name}' is "
                                f"bound to a temporary std::string "
                                f"({why}); the bytes are destroyed at the "
                                f"end of this statement. Materialize the "
                                f"string in a named local that outlives "
                                f"the Slice."))
                # --- assignment to a Slice local or member --------------
                if len(texts) > 2 and toks[s].kind == "ident" and \
                        texts[1] == "=":
                    name = texts[0]
                    target = None
                    if name in slice_locals:
                        target = f"Slice local '{name}'"
                    else:
                        cls = fn.class_name
                        mtype = project.members.get(f"{cls}::{name}", "")
                        if mtype == "Slice":
                            target = f"Slice member '{cls}::{name}'"
                    if target:
                        why = _producer(project, toks, s + 2, e)
                        if why:
                            findings.append(Finding(
                                RULE, sf.path, line,
                                f"in {fn.qualname}: {target} is assigned "
                                f"a temporary std::string ({why}); the "
                                f"bytes are destroyed at the end of this "
                                f"statement."))
                # --- return of a dangling Slice -------------------------
                if returns_slice and texts and texts[0] == "return" and \
                        len(texts) > 1:
                    why = _producer(project, toks, s + 1, e)
                    if why:
                        findings.append(Finding(
                            RULE, sf.path, line,
                            f"in {fn.qualname}: returning a Slice over a "
                            f"temporary std::string ({why}); the backing "
                            f"bytes die before the caller can look at "
                            f"them."))
                    elif len(texts) == 2 and texts[1] in string_locals:
                        findings.append(Finding(
                            RULE, sf.path, line,
                            f"in {fn.qualname}: returning a Slice viewing "
                            f"local std::string '{texts[1]}', which is "
                            f"destroyed at function exit."))
                    elif (len(texts) >= 4 and texts[1] == "Slice"
                          and texts[2] == "(" and texts[3] in string_locals):
                        findings.append(Finding(
                            RULE, sf.path, line,
                            f"in {fn.qualname}: returning Slice("
                            f"{texts[3]}) over a local std::string that "
                            f"is destroyed at function exit."))
    return findings
