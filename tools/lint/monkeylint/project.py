"""Project: all parsed files plus the cross-file registries the checks
share — functions by simple name, declaration annotations merged into
definitions, member types, and textual return types."""

import re

from .model import SourceFile


class Finding:
    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message

    def as_dict(self):
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "message": self.message}

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class Project:
    def __init__(self, paths):
        self.files = []
        for p in sorted(set(paths)):
            self.files.append(SourceFile(p))
        self.by_name = {}        # simple name -> [FunctionDef]
        self.by_qualname = {}    # "Class::name" -> [FunctionDef]
        self.members = {}        # "Class::field" -> type text
        for sf in self.files:
            self.members.update(sf.members)
            for fn in sf.functions:
                self.by_name.setdefault(fn.name, []).append(fn)
                self.by_qualname.setdefault(fn.qualname, []).append(fn)
        # Merge header-declaration annotations into the definitions.
        for sf in self.files:
            for qual, ann in sf.decl_annotations.items():
                for fn in self.by_qualname.get(qual, []):
                    for x in ann["requires"]:
                        if x not in fn.requires:
                            fn.requires.append(x)
                    for x in ann["acquires"]:
                        if x not in fn.acquires:
                            fn.acquires.append(x)
                    for x in ann["excludes"]:
                        if x not in fn.excludes:
                            fn.excludes.append(x)

    def source(self, path):
        for sf in self.files:
            if sf.path == path:
                return sf
        return None

    def returns_type(self, fn, pattern):
        return re.search(pattern, fn.return_type) is not None

    def resolve(self, name):
        """All project definitions a simple-name call might reach."""
        return self.by_name.get(name, [])
