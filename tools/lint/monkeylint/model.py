"""Source model: functions, annotations, calls, suppressions.

Built on the lexer's token stream. Extraction is scope-aware (namespaces,
classes, nested blocks) but deliberately macro-unexpanded: the thread-
safety annotation macros (REQUIRES, ACQUIRE, EXCLUDES, GUARDED_BY, ...)
are read as written, which is exactly the contract surface the checks
reason about.
"""

from dataclasses import dataclass, field
import re

from .lexer import lex, match_paren

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else", "try",
}
_NOT_A_CALL = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "new", "delete", "throw", "assert", "decltype", "defined", "alignas",
    "static_assert", "noexcept", "operator",
}
_CLASS_KEYWORDS = {"class", "struct", "union", "enum"}

# Thread-safety annotation macros (util/thread_annotations.h) whose
# arguments name capabilities (mutexes).
_LOCK_ANNOTATIONS = {
    "REQUIRES", "REQUIRES_SHARED", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "RELEASE_GENERIC", "TRY_ACQUIRE",
    "TRY_ACQUIRE_SHARED", "EXCLUDES", "ASSERT_CAPABILITY",
    "ASSERT_SHARED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER",
}
_BARE_ANNOTATIONS = {"NO_THREAD_SAFETY_ANALYSIS", "SCOPED_CAPABILITY"}


@dataclass
class FunctionDef:
    name: str               # Unqualified: "Get"
    qualname: str           # "DB::Get" (innermost class only) or "Get"
    class_name: str         # "" for free functions
    file: str
    line: int
    head_start: int         # Token index of the declaration head start.
    body_start: int         # Token index of the opening '{'.
    body_end: int           # Token index of the matching '}'.
    requires: list = field(default_factory=list)   # Normalized mutex exprs.
    acquires: list = field(default_factory=list)
    excludes: list = field(default_factory=list)
    no_tsa: bool = False
    calls: list = field(default_factory=list)      # [(name, line, idx)].
    return_type: str = ""   # Head tokens before the qualified name, joined.
    params: list = field(default_factory=list)     # Parameter names.


@dataclass
class Suppression:
    rules: list
    reason: str
    line: int       # Line of the annotation comment itself.
    end_line: int   # Last line the suppression covers (comment block end).
    used: bool = False
    fn_scope: bool = False   # `rule(fn)`: covers the whole function below.
    cover_lo: int = 0        # Line range covered when fn_scope is bound.
    cover_hi: int = 0


class SourceFile:
    def __init__(self, path, text=None):
        self.path = path
        self.lexed = lex(path, text)
        self.tokens = self.lexed.tokens
        self.functions = []
        self.suppressions = []
        self.class_spans = []       # [(open_idx, close_idx, name)]
        self.decl_annotations = {}  # qualname -> {"requires": [...], ...}
        self.members = {}           # "Class::field" -> type string
        self._extract_suppressions()
        self._extract_functions()
        self._bind_fn_suppressions()
        self._extract_decl_annotations()
        self._extract_members()

    # ---- suppressions -------------------------------------------------

    _SUPP_RE = re.compile(
        r"monkey-lint:\s*([a-z0-9-]+(?:\(fn\))?"
        r"(?:\s*,\s*[a-z0-9-]+(?:\(fn\))?)*)\s*"
        r"(?:—|–|--|:)?\s*(.*)", re.S)

    def _extract_suppressions(self):
        for c in self.lexed.comments:
            m = self._SUPP_RE.search(c.text)
            if not m:
                continue
            rules = [r.strip() for r in m.group(1).split(",")]
            fn_scope = any(r.endswith("(fn)") for r in rules)
            rules = [r[:-4] if r.endswith("(fn)") else r for r in rules]
            reason = m.group(2).strip()
            self.suppressions.append(
                Suppression(rules, reason, c.line, c.end_line,
                            fn_scope=fn_scope))

    def _bind_fn_suppressions(self):
        """`// monkey-lint: rule(fn) — reason` directly above a function
        definition covers that function's whole body."""
        for s in self.suppressions:
            if not s.fn_scope:
                continue
            best = None
            for fn in self.functions:
                if fn.body_start < 0:
                    continue
                head_line = self.tokens[fn.head_start].line
                if 0 <= head_line - s.end_line <= 2:
                    if best is None or head_line < \
                            self.tokens[best.head_start].line:
                        best = fn
            if best is not None:
                s.cover_lo = self.tokens[best.head_start].line
                s.cover_hi = self.tokens[best.body_end].line

    def suppression_for(self, rule, line):
        """A finding on `line` is suppressed by an annotation on the same
        line, on a comment block whose last line is one of the two lines
        directly above (annotation-above-statement style), or by a
        function-scope annotation (`rule(fn)`) whose function covers the
        line."""
        for s in self.suppressions:
            if rule not in s.rules and "all" not in s.rules:
                continue
            if s.fn_scope:
                if s.cover_lo <= line <= s.cover_hi:
                    return s
                continue
            if s.line <= line <= s.end_line or 1 <= line - s.end_line <= 2:
                return s
        return None

    # ---- function extraction ------------------------------------------

    def _statement_start(self, brace_idx):
        """Walk back from tokens[brace_idx] == '{' to the start of the
        statement head (token after the nearest ';' '{' '}' at paren
        depth 0)."""
        toks = self.tokens
        depth = 0
        j = brace_idx - 1
        while j >= 0:
            t = toks[j].text
            if t in (")", "]", ">"):
                if t != ">":
                    depth += 1
            elif t in ("(", "["):
                depth -= 1
                if depth < 0:
                    return j + 1
            elif depth == 0 and t in (";", "{", "}"):
                return j + 1
            j -= 1
        return 0

    def _head_info(self, start, brace_idx):
        """Classify the head tokens[start:brace_idx]. Returns one of:
        ("namespace",), ("class", name), ("func", FunctionDef),
        ("block",), ("init",)."""
        toks = self.tokens[start:brace_idx]
        if not toks:
            return ("block",)
        texts = [t.text for t in toks]
        # Strip leading template<...> clause.
        if texts[0] == "template":
            d = 0
            for k, t in enumerate(texts):
                if t == "<":
                    d += 1
                elif t == ">":
                    d -= 1
                    if d == 0:
                        toks = toks[k + 1:]
                        texts = texts[k + 1:]
                        break
            if not texts:
                return ("block",)
        if texts[0] == "namespace":
            return ("namespace",)
        if texts[0] in ("export", "extern"):
            return ("block",)
        if texts[0] == "[":
            return ("block",)  # Lambda introducer.
        kw = [i for i, t in enumerate(texts) if t in _CLASS_KEYWORDS]
        if kw and "(" not in texts[:kw[0]] and "=" not in texts:
            # `class X : public Y {`, `enum class E {`; but not
            # `Foo f = Bar{...}` (ruled out by '=') nor a function whose
            # return type mentions no class keyword before '('.
            if "(" not in texts:
                i = kw[-1] + 1
                while i < len(texts) and texts[i] in ("class", "struct"):
                    i += 1
                name = ""
                while i < len(texts) and toks[i].kind == "ident":
                    # Skip attribute-like macros: CAPABILITY("mutex") etc.
                    name = texts[i]
                    i += 1
                    if i < len(texts) and texts[i] == "(":
                        # Macro call in the head (CAPABILITY(...)): its
                        # argument is not the class name; keep scanning.
                        d = 0
                        while i < len(texts):
                            if texts[i] == "(":
                                d += 1
                            elif texts[i] == ")":
                                d -= 1
                                if d == 0:
                                    break
                            i += 1
                        i += 1
                        name = ""
                        continue
                    if i < len(texts) and texts[i] in (":", "final"):
                        break
                return ("class", name)
            return ("block",)
        # Find first top-level '(' in the head.
        d_angle = 0
        paren = -1
        for k, t in enumerate(texts):
            if t == "<":
                d_angle += 1
            elif t == ">":
                d_angle = max(0, d_angle - 1)
            elif t == "(" and d_angle == 0:
                paren = k
                break
        if paren <= 0:
            if texts[-1] in ("do", "else", "try") or texts[0] in (
                    "do", "else", "try"):
                return ("block",)
            if "=" in texts or texts[-1] in (",", "(", "return") or (
                    toks and toks[-1].kind == "punct"):
                return ("init",)
            return ("block",)
        name_tok = toks[paren - 1]
        if name_tok.text in _CONTROL_KEYWORDS:
            return ("block",)
        if name_tok.kind != "ident":
            # `](...)` lambda, `)(`, operator(), etc.
            return ("block",)
        # Match the paren group.
        close = -1
        d = 0
        for k in range(paren, len(texts)):
            if texts[k] == "(":
                d += 1
            elif texts[k] == ")":
                d -= 1
                if d == 0:
                    close = k
                    break
        if close == -1:
            return ("block",)
        # Trailer after params: qualifiers, annotations, ctor init list.
        trailer = texts[close + 1:]
        fn = self._make_function(toks, paren, close, start)
        if fn is None:
            return ("block",)
        k = 0
        while k < len(trailer):
            t = trailer[k]
            if t in ("const", "noexcept", "override", "final", "mutable",
                     "constexpr", "inline", "&", "&&", "throw"):
                k += 1
                continue
            if t in _BARE_ANNOTATIONS:
                if t == "NO_THREAD_SAFETY_ANALYSIS":
                    fn.no_tsa = True
                k += 1
                continue
            if t in _LOCK_ANNOTATIONS:
                args, k = self._annotation_args(trailer, k + 1)
                if t in ("REQUIRES", "REQUIRES_SHARED"):
                    fn.requires.extend(args)
                elif t in ("ACQUIRE", "ACQUIRE_SHARED", "TRY_ACQUIRE",
                           "TRY_ACQUIRE_SHARED", "ASSERT_CAPABILITY",
                           "ASSERT_SHARED_CAPABILITY"):
                    fn.acquires.extend(args)
                elif t == "EXCLUDES":
                    fn.excludes.extend(args)
                continue
            if t == ":":
                break  # Constructor member-init list.
            if t == "->":
                # Trailing return type: skip to end or next annotation.
                k += 1
                continue
            if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", t):
                k += 1  # Part of a trailing return type or macro.
                continue
            if t in ("::", "<", ">", "*", "&"):
                k += 1  # Trailing-return-type punctuation.
                continue
            # Anything else (',', ']', '=', literals, ...) means this head
            # is an expression — a lambda capture, a call argument list —
            # not a function definition.
            return ("block",)
        return ("func", fn)

    def _annotation_args(self, texts, k):
        """texts[k] should be '('; returns (normalized_args, next_index)."""
        if k >= len(texts) or texts[k] != "(":
            return [], k
        d = 0
        parts, cur = [], []
        while k < len(texts):
            t = texts[k]
            if t == "(":
                d += 1
                if d > 1:
                    cur.append(t)
            elif t == ")":
                d -= 1
                if d == 0:
                    if cur:
                        parts.append(normalize_lock_expr("".join(cur)))
                    return parts, k + 1
                cur.append(t)
            elif t == "," and d == 1:
                if cur:
                    parts.append(normalize_lock_expr("".join(cur)))
                cur = []
            else:
                cur.append(t)
            k += 1
        return parts, k

    def _make_function(self, toks, paren, close, abs_start):
        name = toks[paren - 1].text
        cls = ""
        j = paren - 2
        if j >= 0 and toks[j].text == "~":  # Destructor.
            name = "~" + name
            j -= 1
        # Gather A::B qualifiers (innermost class kept) and reject
        # declarations that are really calls (preceded by '.', '->', etc.)
        quals = []
        while j >= 1 and toks[j].text == "::" and toks[j - 1].kind == "ident":
            quals.append(toks[j - 1].text)
            j -= 2
        if quals:
            cls = quals[0]
        if name in ("operator",):
            return None
        if "std" in quals or cls in ("std", "chrono", "this_thread"):
            return None  # Never treat std:: entities as our definitions.
        qual = f"{cls}::{name}" if cls else name
        ret = " ".join(
            t.text for t in toks[:max(0, j + 1)]
            if t.text not in ("static", "inline", "virtual", "constexpr",
                              "extern", "explicit"))
        params = []
        k = paren + 1
        depth = 1
        prev = None
        frozen = False  # Inside a default-argument expression.
        while k <= close and k < len(toks):
            t = toks[k].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    if prev is not None:
                        params.append(prev)
                    break
            elif depth == 1 and t == ",":
                if prev is not None:
                    params.append(prev)
                prev = None
                frozen = False
            elif depth == 1 and t == "=":
                frozen = True
            if toks[k].kind == "ident" and not frozen:
                prev = toks[k].text
            k += 1
        return FunctionDef(
            name=name, qualname=qual, class_name=cls,
            file=self.path, line=toks[paren - 1].line,
            head_start=abs_start, body_start=-1, body_end=-1,
            return_type=ret, params=params)

    def _extract_functions(self):
        toks = self.tokens
        # Scope stack entries: (kind, class_name_or_empty, close_idx).
        stack = []
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            while stack and i >= stack[-1][2]:
                stack.pop()
            if t.text != "{":
                i += 1
                continue
            close = match_paren(toks, i)
            start = self._statement_start(i)
            info = self._head_info(start, i)
            kind = info[0]
            if kind == "func":
                fn = info[1]
                if not fn.class_name:
                    # Inherit class from the enclosing class scope (methods
                    # defined inline in the class body).
                    for k, cname, _ in reversed(stack):
                        if k == "class" and cname:
                            fn.class_name = cname
                            fn.qualname = f"{cname}::{fn.name}"
                            break
                fn.body_start = i
                fn.body_end = close
                fn.calls = extract_calls(toks, i + 1, close)
                self.functions.append(fn)
                stack.append(("func", "", close))
            elif kind == "class":
                self.class_spans.append((i, close, info[1]))
                stack.append(("class", info[1], close))
            elif kind == "namespace":
                stack.append(("namespace", "", close))
            else:
                stack.append((kind, "", close))
            i += 1

    def enclosing_class(self, idx):
        best = ""
        best_span = None
        for (o, c, name) in self.class_spans:
            if o < idx < c and name:
                if best_span is None or (c - o) < best_span:
                    best, best_span = name, c - o
        return best

    def _inside_function_body(self, idx):
        return any(f.body_start < idx < f.body_end for f in self.functions)

    def _extract_decl_annotations(self):
        """REQUIRES/ACQUIRE/EXCLUDES on *declarations* (headers): walk back
        from each annotation macro to the declared function's name and
        record the contract under Class::name."""
        toks = self.tokens
        for k, t in enumerate(toks):
            if t.kind != "ident" or t.text not in _LOCK_ANNOTATIONS:
                continue
            if t.text in ("GUARDED_BY", "PT_GUARDED_BY"):
                continue  # Field annotations, handled by _extract_members.
            if k + 1 >= len(toks) or toks[k + 1].text != "(":
                continue
            if self._inside_function_body(k):
                continue  # Definition annotations are handled in heads.
            # Walk back over qualifiers / other annotation groups to the
            # parameter list's ')' and then its function name.
            j = k - 1
            name = None
            while j > 0:
                tx = toks[j].text
                if tx in ("const", "noexcept", "override", "final"):
                    j -= 1
                    continue
                if tx == ")":
                    # Match backwards to its '('.
                    d = 0
                    while j >= 0:
                        if toks[j].text == ")":
                            d += 1
                        elif toks[j].text == "(":
                            d -= 1
                            if d == 0:
                                break
                        j -= 1
                    j -= 1
                    if j >= 0 and toks[j].kind == "ident":
                        if toks[j].text in _LOCK_ANNOTATIONS:
                            j -= 1  # Another annotation; keep walking.
                            continue
                        name = toks[j].text
                    break
                break
            if not name:
                continue
            cls = self.enclosing_class(k)
            qual = f"{cls}::{name}" if cls else name
            args, _ = self._annotation_args(
                [x.text for x in toks[k + 1:k + 64]], 0)
            entry = self.decl_annotations.setdefault(
                qual, {"requires": [], "acquires": [], "excludes": []})
            if t.text in ("REQUIRES", "REQUIRES_SHARED"):
                entry["requires"].extend(args)
            elif t.text == "EXCLUDES":
                entry["excludes"].extend(args)
            else:
                entry["acquires"].extend(args)

    def _extract_members(self):
        """Class data members and their (textual) types: `Slice key_;`,
        `std::string name_;`, `Mutex mu_;` — keyed as Class::field."""
        toks = self.tokens
        for (o, c, cls) in self.class_spans:
            k = o + 1
            stmt_start = k
            while k < c:
                t = toks[k].text
                if t == "{":
                    k = match_paren(toks, k) + 1
                    stmt_start = k
                    continue
                if t == "(":
                    k = match_paren(toks, k) + 1
                    continue
                if t == ";":
                    span = toks[stmt_start:k]
                    self._record_member(cls, span)
                    k += 1
                    stmt_start = k
                    continue
                k += 1

    def _record_member(self, cls, span):
        texts = [t.text for t in span]
        if not texts or "(" in texts:
            return  # Method declaration, not a field.
        # Field name: last identifier before '=' / '{' / GUARDED_BY / end.
        stop = len(texts)
        for marker in ("=", "GUARDED_BY", "PT_GUARDED_BY"):
            if marker in texts:
                stop = min(stop, texts.index(marker))
        name_idx = None
        for k in range(stop - 1, -1, -1):
            if span[k].kind == "ident":
                name_idx = k
                break
        if name_idx is None or name_idx == 0:
            return
        name = texts[name_idx]
        typ = " ".join(t for t in texts[:name_idx]
                       if t not in ("mutable", "static", "constexpr"))
        if typ:
            self.members[f"{cls}::{name}"] = typ


def normalize_lock_expr(expr):
    """Normalize a capability expression to a stable node name:
    '&mu_' -> 'mu_', 'this->mu_' -> 'mu_', '!mu_' -> 'mu_',
    'shard->mu' -> 'shard->mu'."""
    e = expr.strip()
    for pre in ("&", "!", "*"):
        while e.startswith(pre):
            e = e[len(pre):]
    if e.startswith("this->"):
        e = e[len("this->"):]
    if e.startswith("this."):
        e = e[len("this."):]
    return e


def extract_calls(tokens, lo, hi):
    """All `ident (` pairs in tokens[lo:hi] that look like calls or
    constructor invocations of named types. Returns [(name, line, idx)]."""
    calls = []
    for k in range(lo, hi):
        t = tokens[k]
        if t.kind != "ident" or t.text in _NOT_A_CALL:
            continue
        if k + 1 >= hi:
            break
        nxt = tokens[k + 1].text
        if nxt == "(":
            calls.append((t.text, t.line, k))
        elif nxt == "<":
            # Possible templated call: name<...>(...). Find the matching
            # '>' within a short window.
            d = 0
            for m in range(k + 1, min(k + 24, hi)):
                x = tokens[m].text
                if x == "<":
                    d += 1
                elif x == ">":
                    d -= 1
                    if d == 0:
                        if m + 1 < hi and tokens[m + 1].text == "(":
                            calls.append((t.text, t.line, k))
                        break
                elif x in (";", "{", "}"):
                    break
    return calls
