#!/usr/bin/env python3
"""Lints DumpMetrics() Prometheus text exposition (CI release job).

Usage:
    dump_metrics | python3 tools/metrics_lint.py
    python3 tools/metrics_lint.py < metrics.txt

Checks, in the spirit of promtool's `check metrics`:
  * every line is a comment (# HELP / # TYPE) or a well-formed sample;
  * each metric's HELP and TYPE are declared before its first sample, at
    most once, with a known type (counter / gauge / summary);
  * sample names match the declared family (summaries may add _sum and
    _count suffixes), label sets are well-formed and values parse;
  * counter and summary values are non-negative and counters end in
    _total (summary _sum/_count excepted);
  * every declared family has at least one sample and vice versa;
  * the paper-specific gauges monkey_predicted_fpr / monkey_measured_fpr
    are present with level labels, plus the lookup-cost pair.

Exits non-zero with a message per violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
KNOWN_TYPES = {"counter", "gauge", "summary"}
REQUIRED = [
    "monkeydb_gets_total",
    "monkeydb_gets_not_found_total",
    "monkey_predicted_fpr",
    "monkey_measured_fpr",
    "monkey_predicted_lookup_cost",
    "monkey_measured_lookup_cost",
]


def family_of(name, types):
    """Maps a sample name to its declared family (summary suffixes fold)."""
    if name in types:
        return name
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def main():
    text = sys.stdin.read()
    errors = []
    helps = {}
    types = {}
    sampled = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line in exposition")
            continue

        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            _, kind, name, rest = parts
            if not NAME_RE.match(name):
                errors.append(f"line {lineno}: bad metric name {name!r}")
                continue
            table = helps if kind == "HELP" else types
            if name in table:
                errors.append(f"line {lineno}: duplicate {kind} for {name}")
            if name in sampled:
                errors.append(
                    f"line {lineno}: {kind} for {name} after its samples"
                )
            if kind == "TYPE" and rest not in KNOWN_TYPES:
                errors.append(
                    f"line {lineno}: unknown type {rest!r} for {name}"
                )
            table[name] = rest
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        family = family_of(name, types)
        if family is None:
            errors.append(f"line {lineno}: sample {name} has no TYPE")
            continue
        if family not in helps:
            errors.append(f"line {lineno}: sample {name} has no HELP")
        if name != family and types[family] != "summary":
            errors.append(
                f"line {lineno}: suffixed sample {name} on "
                f"non-summary {family}"
            )
        sampled.add(family)

        labels = m.group("labels")
        if labels is not None:
            for label in labels.split(","):
                if not LABEL_RE.match(label):
                    errors.append(
                        f"line {lineno}: malformed label {label!r}"
                    )
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: bad value {m.group('value')!r}"
            )
            continue
        if types[family] in ("counter", "summary") and value < 0:
            errors.append(
                f"line {lineno}: negative {types[family]} {name}={value}"
            )
        if (
            types[family] == "counter"
            and not name.endswith("_total")
        ):
            errors.append(
                f"line {lineno}: counter {name} does not end in _total"
            )

    for name in types:
        if name not in sampled:
            errors.append(f"metric {name} declared but never sampled")
    for name in helps:
        if name not in types:
            errors.append(f"metric {name} has HELP but no TYPE")
    for name in types:
        if name not in helps:
            errors.append(f"metric {name} has TYPE but no HELP")
    for name in REQUIRED:
        if name not in sampled:
            errors.append(f"required metric {name} missing")
    for name in ("monkey_predicted_fpr", "monkey_measured_fpr"):
        # The level label may ride with others (the serving layer adds
        # shard="i" when it merges per-shard dumps), so match within the
        # label set instead of requiring level to be the only label.
        if name in sampled and not re.search(
            rf'{name}\{{[^}}]*level="1"', text
        ):
            errors.append(f"{name} has no per-level sample")

    if errors:
        for e in errors:
            print(f"metrics_lint: {e}", file=sys.stderr)
        print(
            f"metrics_lint: FAILED ({len(errors)} problem(s), "
            f"{len(sampled)} metric families)",
            file=sys.stderr,
        )
        return 1
    print(f"metrics_lint: OK ({len(sampled)} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
