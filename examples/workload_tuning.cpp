// Workload tuning: "Navigable Monkey" end to end.
//
// Describe your workload and hardware; the tuner finds the merge policy,
// size ratio, and memory split that maximize worst-case throughput
// (Sec. 4.4 + Appendix D), then the example opens a store with that tuning
// and replays the workload to verify the prediction.
//
// Usage: workload_tuning [lookup_share=0.8]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

using namespace monkeydb;

int main(int argc, char** argv) {
  const double lookup_share = argc > 1 ? atof(argv[1]) : 0.8;

  // --- Describe the application ---
  const uint64_t kNumEntries = 200000;
  const int kValueBytes = 48;

  monkey::Environment env;
  env.num_entries = kNumEntries;
  env.entry_size_bits = (16 + kValueBytes) * 8.0;
  env.total_memory_bits = 8.0 * kNumEntries + (64 << 10) * 8.0;
  env.read_seconds = 10e-3;  // HDD.
  env.write_read_cost_ratio = 1.0;

  monkey::Workload workload;
  workload.zero_result_lookups = lookup_share;
  workload.updates = 1.0 - lookup_share;

  // --- Tune ---
  const monkey::Tuning tuning =
      monkey::AutotuneSizeRatioAndPolicy(env, workload);
  printf("Workload: %.0f%% lookups / %.0f%% updates\n", lookup_share * 100,
         (1 - lookup_share) * 100);
  printf("Tuner chose: %s, T=%.0f, buffer=%.0f KB, filters=%.1f "
         "bits/entry\n",
         tuning.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
         tuning.size_ratio, tuning.buffer_bits / 8 / 1024,
         tuning.filter_bits / kNumEntries);
  printf("Predicted: R=%.4f I/O, W=%.4f I/O, throughput=%.1f ops/s\n\n",
         tuning.lookup_cost, tuning.update_cost, tuning.throughput);

  // --- Open a store with that tuning and replay the workload ---
  auto base_env = NewMemEnv();
  IoStats stats;
  CountingEnv counting_env(base_env.get(), &stats, 4096);

  DbOptions options;
  options.env = &counting_env;
  monkey::ApplyTuning(tuning, kNumEntries, &options);

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/db", &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  WriteOptions wo;
  const std::string value(kValueBytes, 'v');
  for (uint64_t i = 0; i < kNumEntries; i++) {
    char key[32];
    snprintf(key, sizeof(key), "item%012llu",
             static_cast<unsigned long long>(i));
    db->Put(wo, key, value).ok();
  }
  db->Flush().ok();

  Random rng(99);
  ReadOptions ro;
  std::string out;
  const int kOps = 30000;
  uint64_t next_key = kNumEntries;
  const auto before = stats.Snapshot();
  for (int i = 0; i < kOps; i++) {
    char key[32];
    if (rng.Bernoulli(lookup_share)) {
      snprintf(key, sizeof(key), "item%012llux",
               static_cast<unsigned long long>(rng.Uniform(kNumEntries)));
      db->Get(ro, key, &out).ok();
    } else {
      snprintf(key, sizeof(key), "item%012llu",
               static_cast<unsigned long long>(next_key++));
      db->Put(wo, key, value).ok();
    }
  }
  const auto delta = stats.Snapshot() - before;
  const double seconds = DeviceModel::Hdd().SimulatedSeconds(delta);
  printf("Replay: %d ops -> %llu read I/Os + %llu write I/Os\n", kOps,
         static_cast<unsigned long long>(delta.read_ios),
         static_cast<unsigned long long>(delta.write_ios));
  printf("Measured throughput on the HDD model: %.1f ops/s\n",
         kOps / seconds);
  printf("\nTry other mixes, e.g. `workload_tuning 0.1` (write-heavy) — the"
         "\ntuner will flip to tiering / a different size ratio.\n");
  return 0;
}
