// monkeydb_dump: offline inspection of a MonkeyDB database directory —
// manifest edits, SSTable contents/filters, value-log segments, and the
// tree summary. Useful for debugging and for verifying the on-disk format
// documented in docs/FORMAT.md.
//
// Usage:
//   monkeydb_dump <db_path>                 # summary + manifest
//   monkeydb_dump <db_path> sst <N>         # dump table N's entries
//   monkeydb_dump <db_path> tree            # open the DB, print DebugString

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/env.h"
#include "lsm/db.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "sstable/table_reader.h"

using namespace monkeydb;

namespace {

int DumpManifest(Env* env, const std::string& path) {
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(path + "/MANIFEST", &file);
  if (!s.ok()) {
    fprintf(stderr, "no manifest: %s\n", s.ToString().c_str());
    return 1;
  }
  WalReader reader(std::move(file));
  std::string scratch;
  Slice record;
  int edit_index = 0;
  while (reader.ReadRecord(&scratch, &record)) {
    VersionEdit edit;
    if (!edit.DecodeFrom(record).ok()) {
      printf("edit %d: <corrupt>\n", edit_index++);
      continue;
    }
    printf("edit %d: last_seq=%llu next_file=%llu\n", edit_index++,
           static_cast<unsigned long long>(edit.last_sequence),
           static_cast<unsigned long long>(edit.next_file_number));
    for (const auto& run : edit.added) {
      printf("  + level %d file %06llu (%llu entries, %llu bytes)\n",
             run.level, static_cast<unsigned long long>(run.file_number),
             static_cast<unsigned long long>(run.num_entries),
             static_cast<unsigned long long>(run.file_size));
    }
    for (uint64_t fn : edit.deleted_files) {
      printf("  - file %06llu\n", static_cast<unsigned long long>(fn));
    }
  }
  return 0;
}

int DumpTable(Env* env, const std::string& path, uint64_t number) {
  char fname[32];
  snprintf(fname, sizeof(fname), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  const std::string full = path + fname;
  uint64_t size;
  Status s = env->GetFileSize(full, &size);
  if (!s.ok()) {
    fprintf(stderr, "%s: %s\n", full.c_str(), s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<RandomAccessFile> file;
  if (!env->NewRandomAccessFile(full, &file).ok()) return 1;

  InternalKeyComparator cmp(BytewiseComparator());
  TableReaderOptions opts;
  opts.comparator = &cmp;
  std::unique_ptr<TableReader> table;
  s = TableReader::Open(opts, std::move(file), size, &table);
  if (!s.ok()) {
    fprintf(stderr, "open table: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("table %06llu: %llu data blocks, filter %llu bits\n",
         static_cast<unsigned long long>(number),
         static_cast<unsigned long long>(table->num_data_blocks()),
         static_cast<unsigned long long>(table->filter_size_bits()));
  auto iter = table->NewIterator();
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) continue;
    const char* kind = parsed.type == ValueType::kDeletion ? "DEL"
                       : parsed.type == ValueType::kValueHandle ? "HDL"
                                                                : "VAL";
    if (count < 50) {
      printf("  %s seq=%llu %s -> %zu bytes\n", kind,
             static_cast<unsigned long long>(parsed.sequence),
             parsed.user_key.ToString().c_str(), iter->value().size());
    }
  }
  if (count >= 50) printf("  ... (%d entries total)\n", count);
  return iter->status().ok() ? 0 : 1;
}

int DumpTree(const std::string& path) {
  DbOptions options;
  options.env = GetPosixEnv();
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("%s", db->DebugString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr,
            "usage: %s <db_path> [sst <number> | tree]\n", argv[0]);
    return 1;
  }
  const std::string path = argv[1];
  Env* env = GetPosixEnv();

  if (argc >= 4 && strcmp(argv[2], "sst") == 0) {
    return DumpTable(env, path, strtoull(argv[3], nullptr, 10));
  }
  if (argc >= 3 && strcmp(argv[2], "tree") == 0) {
    return DumpTree(path);
  }

  printf("=== files ===\n");
  std::vector<std::string> children;
  if (env->GetChildren(path, &children).ok()) {
    for (const std::string& child : children) {
      uint64_t size = 0;
      env->GetFileSize(path + "/" + child, &size).ok();
      printf("  %-24s %10llu bytes\n", child.c_str(),
             static_cast<unsigned long long>(size));
    }
  }
  printf("=== manifest ===\n");
  return DumpManifest(env, path);
}
