// monkeydb_cli: a small interactive shell over a MonkeyDB database.
//
// Usage: monkeydb_cli <db_path> [< script]
// Commands:
//   put <key> <value>     delete <key>        get <key>
//   scan <start> <count>  stats               flush
//   compact               tune <lookup%%>      help        quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"

using namespace monkeydb;

namespace {

void PrintStats(DB* db) {
  const DbStats stats = db->GetStats();
  printf("memtable entries : %llu\n",
         static_cast<unsigned long long>(stats.memtable_entries));
  printf("disk entries     : %llu in %llu runs, deepest level %d\n",
         static_cast<unsigned long long>(stats.total_disk_entries),
         static_cast<unsigned long long>(stats.total_runs),
         stats.deepest_level);
  for (size_t level = 0; level < stats.entries_per_level.size(); level++) {
    if (stats.runs_per_level[level] == 0) continue;
    const double bpe =
        stats.entries_per_level[level] > 0
            ? static_cast<double>(stats.filter_bits_per_level[level]) /
                  stats.entries_per_level[level]
            : 0;
    printf("  level %zu: %llu runs, %llu entries, %.2f filter bits/entry\n",
           level + 1,
           static_cast<unsigned long long>(stats.runs_per_level[level]),
           static_cast<unsigned long long>(stats.entries_per_level[level]),
           bpe);
  }
  printf("lookups          : %llu (%llu filtered, %llu false positive)\n",
         static_cast<unsigned long long>(stats.gets),
         static_cast<unsigned long long>(stats.filter_negatives),
         static_cast<unsigned long long>(stats.false_positives));
  printf("flushes/merges   : %llu / %llu\n",
         static_cast<unsigned long long>(stats.flushes),
         static_cast<unsigned long long>(stats.merges));
}

void Tune(DB* db, double lookup_share) {
  const DbStats stats = db->GetStats();
  const uint64_t n =
      std::max<uint64_t>(stats.total_disk_entries + stats.memtable_entries,
                         1000);
  monkey::Environment env;
  env.num_entries = static_cast<double>(n);
  env.entry_size_bits = 64 * 8;  // Assume ~64 B entries for the estimate.
  env.total_memory_bits =
      db->options().bits_per_entry * n +
      db->options().buffer_size_bytes * 8.0;
  monkey::Workload w;
  w.zero_result_lookups = lookup_share;
  w.updates = 1.0 - lookup_share;
  const monkey::Tuning tuning = monkey::AutotuneSizeRatioAndPolicy(env, w);
  printf("recommended: %s, T=%.0f, buffer %.0f KB, %.1f bits/entry "
         "(R=%.4f W=%.4f I/O)\n",
         tuning.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
         tuning.size_ratio, tuning.buffer_bits / 8 / 1024,
         tuning.filter_bits / env.num_entries, tuning.lookup_cost,
         tuning.update_cost);
  printf("(reopen the database with these options to apply)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s <db_path>\n", argv[0]);
    return 1;
  }

  DbOptions options;
  options.env = GetPosixEnv();
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 1 << 20;
  options.bits_per_entry = 8.0;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, argv[1], &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("MonkeyDB shell — 'help' for commands\n");

  std::string line;
  while (printf("> "), fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      printf("put <k> <v> | get <k> | delete <k> | scan <start> <count> |\n"
             "stats | flush | compact | tune <lookup%%> | quit\n");
    } else if (cmd == "put") {
      std::string key, value;
      in >> key >> value;
      s = db->Put(WriteOptions(), key, value);
      printf("%s\n", s.ToString().c_str());
    } else if (cmd == "get") {
      std::string key, value;
      in >> key;
      s = db->Get(ReadOptions(), key, &value);
      printf("%s\n", s.ok() ? value.c_str() : s.ToString().c_str());
    } else if (cmd == "delete") {
      std::string key;
      in >> key;
      s = db->Delete(WriteOptions(), key);
      printf("%s\n", s.ToString().c_str());
    } else if (cmd == "scan") {
      std::string start;
      int count = 10;
      in >> start >> count;
      auto iter = db->NewIterator(ReadOptions());
      int shown = 0;
      for (iter->Seek(start); iter->Valid() && shown < count;
           iter->Next(), shown++) {
        printf("%s = %s\n", iter->key().ToString().c_str(),
               iter->value().ToString().c_str());
      }
      if (shown == 0) printf("(empty range)\n");
    } else if (cmd == "stats") {
      PrintStats(db.get());
    } else if (cmd == "flush") {
      printf("%s\n", db->Flush().ToString().c_str());
    } else if (cmd == "compact") {
      printf("%s\n", db->CompactAll().ToString().c_str());
    } else if (cmd == "tune") {
      double pct = 50;
      in >> pct;
      Tune(db.get(), pct / 100.0);
    } else {
      printf("unknown command '%s' ('help' for commands)\n", cmd.c_str());
    }
  }
  return 0;
}
