// Social-graph workload: the paper's motivating use case (Sec. 1 cites
// LinkBench / Facebook's TAO, where zero-result lookups are common — e.g.
// insert-if-not-exist on edges).
//
// Models a social app over MonkeyDB:
//   - "edge:<src>:<dst>" keys, inserted as follows arrive;
//   - insert-if-not-exist: each insert first issues a point lookup that is
//     usually zero-result (the paper's dominant cost);
//   - timeline reads: short range scans over a user's outgoing edges.
// Compares the uniform baseline against Monkey on the same memory budget.

#include <cstdio>
#include <string>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

using namespace monkeydb;

namespace {

constexpr int kUsers = 20000;
constexpr int kEdges = 150000;
constexpr int kTimelineReads = 3000;

std::string EdgeKey(uint32_t src, uint32_t dst) {
  char buf[32];
  snprintf(buf, sizeof(buf), "edge:%08u:%08u", src, dst);
  return buf;
}

struct RunStats {
  uint64_t read_ios = 0;
  uint64_t write_ios = 0;
  double hdd_seconds = 0;
};

RunStats RunWorkload(bool monkey_filters) {
  auto base_env = NewMemEnv();
  IoStats stats;
  CountingEnv env(base_env.get(), &stats, 4096);

  DbOptions options;
  options.env = &env;
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 128 << 10;
  options.bits_per_entry = 5.0;
  if (monkey_filters) options.fpr_policy = monkey::NewMonkeyFprPolicy();

  std::unique_ptr<DB> db;
  if (!DB::Open(options, "/social", &db).ok()) abort();

  Random rng(8);
  WriteOptions wo;
  ReadOptions ro;
  std::string value;

  // Followers arrive: insert-if-not-exist on edges. Most probes are
  // zero-result (a fresh follow), some are duplicates (already following).
  int duplicates = 0;
  for (int i = 0; i < kEdges; i++) {
    const uint32_t src = static_cast<uint32_t>(rng.Uniform(kUsers));
    const uint32_t dst = static_cast<uint32_t>(rng.Uniform(kUsers));
    const std::string key = EdgeKey(src, dst);
    if (db->Get(ro, key, &value).ok()) {
      duplicates++;  // Edge exists: skip the write.
      continue;
    }
    db->Put(wo, key, "ts=1699999999;weight=1").ok();
  }

  // Timeline reads: scan a user's outgoing edges.
  uint64_t edges_scanned = 0;
  for (int i = 0; i < kTimelineReads; i++) {
    const uint32_t src = static_cast<uint32_t>(rng.Uniform(kUsers));
    char prefix[16];
    snprintf(prefix, sizeof(prefix), "edge:%08u:", src);
    auto iter = db->NewIterator(ro);
    for (iter->Seek(prefix);
         iter->Valid() && iter->key().starts_with(Slice(prefix));
         iter->Next()) {
      edges_scanned++;
    }
  }

  const auto io = stats.Snapshot();
  RunStats result;
  result.read_ios = io.read_ios;
  result.write_ios = io.write_ios;
  result.hdd_seconds = DeviceModel::Hdd().SimulatedSeconds(io);
  static bool printed = false;
  if (!printed) {
    printf("workload: %d insert-if-not-exist (%d duplicates), %d timeline "
           "scans (%llu edges)\n\n",
           kEdges, duplicates, kTimelineReads,
           static_cast<unsigned long long>(edges_scanned));
    printed = true;
  }
  return result;
}

}  // namespace

int main() {
  printf("Social-graph workload on MonkeyDB (leveling, T=4, 5 bits/entry)\n");
  const RunStats uniform = RunWorkload(false);
  const RunStats monkey = RunWorkload(true);

  printf("%-22s %12s %12s %14s\n", "filter allocation", "read I/Os",
         "write I/Os", "HDD time (s)");
  printf("%-22s %12llu %12llu %14.1f\n", "uniform (baseline)",
         static_cast<unsigned long long>(uniform.read_ios),
         static_cast<unsigned long long>(uniform.write_ios),
         uniform.hdd_seconds);
  printf("%-22s %12llu %12llu %14.1f\n", "Monkey",
         static_cast<unsigned long long>(monkey.read_ios),
         static_cast<unsigned long long>(monkey.write_ios),
         monkey.hdd_seconds);

  const double saved =
      100.0 * (1.0 - static_cast<double>(monkey.read_ios) /
                         static_cast<double>(uniform.read_ios));
  printf("\nMonkey served the same workload with %.1f%% fewer read I/Os —\n"
         "the insert-if-not-exist probes are exactly the zero-result "
         "lookups\nthe paper optimizes (Sec. 2, [29]).\n", saved);
  return 0;
}
