// Design explorer: interactive what-if analysis over the LSM design space
// (the paper's closed-form models; a CLI stand-in for the authors' online
// demo).
//
// Usage:
//   design_explorer N entry_bytes memory_MB lookup%% [hdd|flash]
// e.g.
//   ./build/examples/design_explorer 1e9 128 1024 50 hdd

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "monkey/design_space.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main(int argc, char** argv) {
  const double n = argc > 1 ? atof(argv[1]) : 1e8;
  const double entry_bytes = argc > 2 ? atof(argv[2]) : 128;
  const double memory_mb = argc > 3 ? atof(argv[3]) : 256;
  const double lookup_pct = argc > 4 ? atof(argv[4]) : 50;
  const bool flash = argc > 5 && strcmp(argv[5], "flash") == 0;

  Environment env;
  env.num_entries = n;
  env.entry_size_bits = entry_bytes * 8;
  env.total_memory_bits = memory_mb * (1 << 20) * 8.0;
  env.read_seconds = flash ? 100e-6 : 10e-3;
  env.write_read_cost_ratio = flash ? 2.0 : 1.0;

  Workload w;
  w.zero_result_lookups = lookup_pct / 100.0;
  w.updates = 1.0 - w.zero_result_lookups;

  printf("Environment: N=%.3g entries x %.0f B, memory %.0f MB, "
         "%s (omega=%.0f us, phi=%.0f)\n",
         n, entry_bytes, memory_mb, flash ? "flash" : "disk",
         env.read_seconds * 1e6, env.write_read_cost_ratio);
  printf("Workload: %.0f%% zero-result lookups, %.0f%% updates\n\n",
         lookup_pct, 100 - lookup_pct);

  const Tuning best = AutotuneSizeRatioAndPolicy(env, w);
  printf("Optimal design:\n");
  printf("  merge policy : %s\n",
         best.policy == MergePolicy::kLeveling ? "leveling" : "tiering");
  printf("  size ratio T : %.0f\n", best.size_ratio);
  printf("  buffer       : %.1f MB\n", best.buffer_bits / 8 / (1 << 20));
  printf("  filters      : %.1f MB (%.2f bits/entry, Monkey allocation)\n",
         best.filter_bits / 8 / (1 << 20), best.filter_bits / n);
  printf("  predicted    : R=%.5f I/O  W=%.5f I/O  theta=%.5f  "
         "tau=%.1f ops/s\n\n",
         best.lookup_cost, best.update_cost, best.avg_op_cost,
         best.throughput);

  // What-if panel (Sec. 4.4): one change at a time, re-tuned.
  printf("What-if analysis:\n");
  {
    const WhatIfResult r = WhatIfMemoryChanges(env, w,
                                               env.total_memory_bits * 2);
    printf("  2x memory        -> %s T=%.0f, tau %.1f -> %.1f ops/s\n",
           r.after.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           r.after.size_ratio, r.before.throughput, r.after.throughput);
  }
  {
    Workload inverted;
    inverted.zero_result_lookups = w.updates;
    inverted.updates = w.zero_result_lookups;
    const WhatIfResult r = WhatIfWorkloadChanges(env, w, inverted);
    printf("  inverted workload-> %s T=%.0f, tau %.1f -> %.1f ops/s\n",
           r.after.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           r.after.size_ratio, r.before.throughput, r.after.throughput);
  }
  {
    const WhatIfResult r = WhatIfDataGrows(env, w, n * 10,
                                           env.entry_size_bits);
    printf("  10x data         -> %s T=%.0f, tau %.1f -> %.1f ops/s\n",
           r.after.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           r.after.size_ratio, r.before.throughput, r.after.throughput);
  }
  {
    const WhatIfResult r = WhatIfStorageChanges(
        env, w, flash ? 10e-3 : 100e-6, flash ? 1.0 : 2.0);
    printf("  %s       -> %s T=%.0f, tau %.1f -> %.1f ops/s\n",
           flash ? "move to disk " : "move to flash",
           r.after.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           r.after.size_ratio, r.before.throughput, r.after.throughput);
  }

  // SLA example: bound lookup latency.
  SlaBounds sla;
  sla.max_lookup_cost = best.lookup_cost / 2;
  const Tuning bounded = AutotuneSizeRatioAndPolicy(env, w, sla);
  printf("\nWith an SLA capping R at %.5f I/O: %s T=%.0f, tau=%.1f ops/s"
         " (%s)\n",
         sla.max_lookup_cost,
         bounded.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
         bounded.size_ratio, bounded.throughput,
         bounded.feasible ? "feasible" : "INFEASIBLE");
  return 0;
}
