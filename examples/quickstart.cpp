// Quickstart: open a MonkeyDB database, write, read, scan, and inspect the
// LSM-tree it built.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [db_path]
//
// By default this uses the real filesystem under /tmp; pass a path to put
// the database elsewhere.

#include <cstdio>
#include <string>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"

using namespace monkeydb;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/monkeydb_quickstart";

  // 1. Configure the store. These four knobs are the paper's design space:
  //    merge policy, size ratio T, buffer size, and filter memory (with
  //    Monkey's optimal allocation across levels).
  DbOptions options;
  options.env = GetPosixEnv();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 128 << 10;  // 128 KB buffer.
  options.bits_per_entry = 8.0;         // Total filter budget.
  options.fpr_policy = monkey::NewMonkeyFprPolicy();  // The paper's insight.

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Write some data.
  WriteOptions wo;
  for (int i = 0; i < 50000; i++) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "user:%08d", i);
    snprintf(value, sizeof(value), "profile-data-%d", i);
    s = db->Put(wo, key, value);
    if (!s.ok()) {
      fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  db->Delete(wo, "user:00000042").ok();

  // 3. Point lookups.
  ReadOptions ro;
  std::string value;
  s = db->Get(ro, "user:00012345", &value);
  printf("get user:00012345 -> %s\n",
         s.ok() ? value.c_str() : s.ToString().c_str());
  s = db->Get(ro, "user:00000042", &value);
  printf("get user:00000042 -> %s (deleted)\n", s.ToString().c_str());

  // 4. Range scan.
  printf("scan [user:00010000, +5):\n");
  auto iter = db->NewIterator(ro);
  int count = 0;
  for (iter->Seek("user:00010000"); iter->Valid() && count < 5;
       iter->Next(), count++) {
    printf("  %s = %s\n", iter->key().ToString().c_str(),
           iter->value().ToString().c_str());
  }

  // 5. Inspect the tree the engine built.
  const DbStats stats = db->GetStats();
  printf("\nLSM-tree shape (T=%.0f, %s):\n", options.size_ratio,
         options.merge_policy == MergePolicy::kLeveling ? "leveling"
                                                        : "tiering");
  for (size_t level = 0; level < stats.entries_per_level.size(); level++) {
    if (stats.runs_per_level[level] == 0) continue;
    const double bpe =
        stats.entries_per_level[level] > 0
            ? static_cast<double>(stats.filter_bits_per_level[level]) /
                  stats.entries_per_level[level]
            : 0.0;
    printf("  level %zu: %llu runs, %llu entries, %.2f filter bits/entry\n",
           level + 1,
           static_cast<unsigned long long>(stats.runs_per_level[level]),
           static_cast<unsigned long long>(stats.entries_per_level[level]),
           bpe);
  }
  printf("Monkey gives shallow levels more bits/entry (lower FPR) and the\n"
         "deepest level fewer — that is the paper's optimal allocation.\n");
  return 0;
}
