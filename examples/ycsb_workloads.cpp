// YCSB-style workload suite over MonkeyDB, comparing the uniform baseline
// with Monkey filters under each core workload:
//   A  update-heavy      (50% reads, 50% updates, zipfian)
//   B  read-mostly       (95% reads,  5% updates, zipfian)
//   C  read-only         (100% reads, zipfian)
//   D  read-latest       (95% reads of recent keys, 5% inserts)
//   E  short scans       (95% scans, 5% inserts)
//   F  read-modify-write (50% reads, 50% RMW, zipfian)
// plus the insert-if-not-exist flavor the paper's Sec. 2 highlights.
//
// Usage: ycsb_workloads [records=100000] [operations=30000]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

using namespace monkeydb;

namespace {

int g_records = 100000;
int g_operations = 30000;

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

struct Instance {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<IoStats> stats;
  std::unique_ptr<CountingEnv> env;
  std::unique_ptr<DB> db;
};

Instance Load(bool monkey_filters) {
  Instance inst;
  inst.base_env = NewMemEnv();
  inst.stats = std::make_unique<IoStats>();
  inst.env = std::make_unique<CountingEnv>(inst.base_env.get(),
                                           inst.stats.get(), 4096);
  DbOptions options;
  options.env = inst.env.get();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 128 << 10;
  options.bits_per_entry = 5.0;
  options.expected_entries = g_records;
  if (monkey_filters) options.fpr_policy = monkey::NewMonkeyFprPolicy();
  if (!DB::Open(options, "/ycsb", &inst.db).ok()) abort();
  WriteOptions wo;
  const std::string value(100, 'y');  // YCSB default: ~100 B fields.
  for (int i = 0; i < g_records; i++) {
    const std::string key = Key(i);
    if (!inst.db->Put(wo, key, value).ok()) abort();
  }
  if (!inst.db->Flush().ok()) abort();
  return inst;
}

// Runs `name` against both filter allocations and prints read I/Os per op.
template <typename WorkloadFn>
void RunWorkload(const char* name, WorkloadFn&& fn) {
  double ios[2];
  for (int monkey_on = 0; monkey_on <= 1; monkey_on++) {
    Instance inst = Load(monkey_on == 1);
    Random rng(20260706);
    const auto before = inst.stats->Snapshot();
    fn(inst.db.get(), &rng);
    const auto delta = inst.stats->Snapshot() - before;
    ios[monkey_on] =
        static_cast<double>(delta.read_ios) / g_operations;
  }
  const double gain =
      ios[0] > 0 ? (ios[0] - ios[1]) / ios[0] * 100.0 : 0.0;
  printf("%-28s %14.4f %14.4f %9.1f%%\n", name, ios[0], ios[1], gain);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_records = atoi(argv[1]);
  if (argc > 2) g_operations = atoi(argv[2]);

  printf("YCSB-style workloads, %d records / %d ops "
         "(leveling T=4, 5 bits/entry)\n\n", g_records, g_operations);
  printf("%-28s %14s %14s %10s\n", "workload", "uniform I/O/op",
         "monkey I/O/op", "gain");

  const std::string value(100, 'y');

  RunWorkload("A update-heavy (zipf)", [&](DB* db, Random* rng) {
    ZipfianGenerator zipf(g_records);
    std::string out;
    for (int i = 0; i < g_operations; i++) {
      const std::string key = Key(zipf.Next(rng));
      if (rng->Bernoulli(0.5)) {
        db->Get(ReadOptions(), key, &out).ok();
      } else {
        db->Put(WriteOptions(), key, value).ok();
      }
    }
  });

  RunWorkload("B read-mostly (zipf)", [&](DB* db, Random* rng) {
    ZipfianGenerator zipf(g_records);
    std::string out;
    for (int i = 0; i < g_operations; i++) {
      const std::string key = Key(zipf.Next(rng));
      if (rng->Bernoulli(0.95)) {
        db->Get(ReadOptions(), key, &out).ok();
      } else {
        db->Put(WriteOptions(), key, value).ok();
      }
    }
  });

  RunWorkload("C read-only (zipf)", [&](DB* db, Random* rng) {
    ZipfianGenerator zipf(g_records);
    std::string out;
    for (int i = 0; i < g_operations; i++) {
      const std::string key = Key(zipf.Next(rng));
      db->Get(ReadOptions(), key, &out).ok();
    }
  });

  RunWorkload("D read-latest", [&](DB* db, Random* rng) {
    std::string out;
    uint64_t next = g_records;
    for (int i = 0; i < g_operations; i++) {
      if (rng->Bernoulli(0.05)) {
        const std::string key = Key(next++);
        db->Put(WriteOptions(), key, value).ok();
      } else {
        // Read near the most recently inserted keys.
        const uint64_t back = rng->Uniform(1000) + 1;
        const std::string key = Key(next > back ? next - back : 0);
        db->Get(ReadOptions(), key, &out)
            .ok();
      }
    }
  });

  RunWorkload("E short scans", [&](DB* db, Random* rng) {
    uint64_t next = g_records;
    for (int i = 0; i < g_operations; i++) {
      if (rng->Bernoulli(0.05)) {
        const std::string key = Key(next++);
        db->Put(WriteOptions(), key, value).ok();
      } else {
        auto iter = db->NewIterator(ReadOptions());
        int len = 1 + static_cast<int>(rng->Uniform(100));
        const std::string key = Key(rng->Uniform(g_records));
        for (iter->Seek(key);
             iter->Valid() && len > 0; iter->Next(), len--) {
        }
      }
    }
  });

  RunWorkload("F read-modify-write (zipf)", [&](DB* db, Random* rng) {
    ZipfianGenerator zipf(g_records);
    std::string out;
    for (int i = 0; i < g_operations; i++) {
      const std::string key = Key(zipf.Next(rng));
      db->Get(ReadOptions(), key, &out).ok();
      if (rng->Bernoulli(0.5)) {
        db->Put(WriteOptions(), key, value).ok();
      }
    }
  });

  RunWorkload("insert-if-not-exist", [&](DB* db, Random* rng) {
    // The paper's canonical zero-result workload (Sec. 2, [29]): new ids
    // interleaved inside the existing key range, so fence pointers cannot
    // exclude the probe and only Bloom filters stand before the I/O.
    std::string out;
    for (int i = 0; i < g_operations; i++) {
      const std::string key = Key(rng->Uniform(g_records)) + "n" +
                              std::to_string(rng->Uniform(1 << 20));
      if (db->Get(ReadOptions(), key, &out).IsNotFound()) {
        db->Put(WriteOptions(), key, value).ok();
      }
    }
  });

  printf("\nMonkey helps most where zero-result probes dominate\n"
         "(insert-if-not-exist) and least where every read returns data\n"
         "(C: the mandatory 1-I/O target read dominates).\n");
  return 0;
}
