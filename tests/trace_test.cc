// Request-tracing tests (DESIGN.md §16): the flight recorder's seqlock
// rings under concurrent writers, the disarmed-path overhead contract
// (one relaxed load, zero clock reads), reconciliation of a traced Get's
// per-level kRunProbe spans against the Eq. 3 PerfContext accounting,
// SLOWLOG capture through a real server socket, and a round trip of the
// Chrome-JSON dump through tools/trace_view.py --check.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "obs/flight_recorder.h"
#include "obs/perf_context.h"
#include "server/resp_client.h"
#include "server/server.h"
#include "util/random.h"

namespace monkeydb {
namespace {

// 8 writers hammer a tiny ring (forcing constant wraparound) while a
// reader snapshots continuously. Every event a snapshot returns must be
// internally consistent — the writers encode a checksum across the
// payload words, so a torn slot (mixed old/new words) fails the check.
// Under TSan this also proves the seqlock publishes race-free.
TEST(FlightRecorderTest, WraparoundSnapshotsNeverTear) {
  FlightRecorder recorder;
  recorder.SetRingCapacityForTest(64);

  constexpr int kWriters = 8;
  constexpr int kEventsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<TraceEvent> events = recorder.Snapshot();
      uint64_t prev_ts = 0;
      for (const TraceEvent& e : events) {
        // Writer invariant: args[1] == args[0] * 3, args[2] == args[0] ^
        // request_id. Any mix of two events breaks it.
        if (e.args[1] != e.args[0] * 3 ||
            e.args[2] != (e.args[0] ^ static_cast<int64_t>(e.request_id))) {
          torn.fetch_add(1);
        }
        if (e.ts_nanos < prev_ts) torn.fetch_add(1);  // Must be sorted.
        prev_ts = e.ts_nanos;
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kEventsPerWriter; i++) {
        TraceEvent e;
        e.ts_nanos = TraceNowNanos();
        e.request_id = static_cast<uint64_t>(w + 1);
        e.args[0] = i;
        e.args[1] = static_cast<int64_t>(i) * 3;
        e.args[2] = i ^ static_cast<int64_t>(w + 1);
        e.name = TraceName::kRunProbe;
        e.phase = 'I';
        recorder.Record(e);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
  // The rings wrapped many times; what remains is at most the last
  // capacity's worth per writer, and every survivor is intact.
  std::vector<TraceEvent> final_events = recorder.Snapshot();
  EXPECT_GT(final_events.size(), 0u);
  EXPECT_LE(final_events.size(), size_t{kWriters} * 64);
  for (const TraceEvent& e : final_events) {
    EXPECT_EQ(e.args[1], e.args[0] * 3);
    EXPECT_EQ(e.args[2], e.args[0] ^ static_cast<int64_t>(e.request_id));
  }
}

// The overhead contract for disabled tracing: with the sample rate at 0
// and nothing force-armed, a full read workload records no spans and
// performs not a single trace-clock read — TraceClockReads() is the
// proof that TraceSpan's disarmed path never reaches the clock.
TEST(TraceTest, DisarmedPathRecordsNothingAndNeverReadsClock) {
  SetTraceSampleRate(0.0);
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 500; i++) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }

  FlightRecorder::Global()->Clear();  // One clock read, before the mark.
  const uint64_t clock_before = TraceClockReads();
  for (int i = 0; i < 500; i++) {
    const std::string present = "key" + std::to_string(i);
    const std::string missing = "missing" + std::to_string(i);
    (void)db->Get(ro, present, &value);
    (void)db->Get(ro, missing, &value);
  }
  EXPECT_EQ(TraceClockReads(), clock_before);
  EXPECT_TRUE(FlightRecorder::Global()->Snapshot().empty());
}

// A traced zero-result Get probes every run exactly once, and each
// kRunProbe span's recorded outcome must reconcile with the Eq. 3
// bookkeeping PerfContext does independently: every probe is counted in
// runs_probed unless the filter pruned it (filter_negatives), and a
// kNotPresent outcome is precisely a Bloom false positive.
TEST(TraceTest, TracedGetSpansReconcileWithEq3Counters) {
  SetTraceSampleRate(0.0);
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;  // Small: force multiple levels.
  options.bits_per_entry = 5.0;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  Random rng(301);
  const std::string fill_value(40, 'v');
  for (int i = 0; i < 4000; i++) {
    const std::string key = "key" + std::to_string(rng.Uniform(3000));
    ASSERT_TRUE(db->Put(wo, key, fill_value).ok());
  }

  SetPerfLevel(PerfLevel::kCounts);
  ReadOptions traced;
  traced.trace = true;
  std::string value;
  uint64_t probes = 0;
  // Zero-result lookups until at least one traced request probed a run
  // (the tree may answer a given key from the memtable alone).
  for (int i = 0; i < 200 && probes == 0; i++) {
    FlightRecorder::Global()->Clear();
    GetPerfContext()->Reset();
    const std::string absent = "absent" + std::to_string(i);
    const Status s = db->Get(traced, absent, &value);
    ASSERT_TRUE(s.IsNotFound() || s.ok());
    probes = GetPerfContext()->runs_probed + GetPerfContext()->filter_negatives;
  }
  ASSERT_GT(probes, 0u) << "no lookup ever reached a disk run";
  const PerfContext& perf = *GetPerfContext();
  SetPerfLevel(PerfLevel::kDisabled);

  const uint64_t request_id = TraceLastRequestId();
  ASSERT_NE(request_id, 0u);
  std::vector<TraceEvent> events = FlightRecorder::Global()->Snapshot();
  uint64_t runs_probed = 0, filtered_out = 0, false_positives = 0;
  uint64_t get_spans = 0, memtable_spans = 0, filter_spans = 0;
  for (const TraceEvent& e : events) {
    if (e.request_id != request_id) continue;
    if (e.phase != 'E') continue;  // End events carry the final outcome.
    switch (e.name) {
      case TraceName::kDbGet:
        get_spans++;
        break;
      case TraceName::kMemtableProbe:
        memtable_spans++;
        break;
      case TraceName::kFilterProbe:
        filter_spans++;
        break;
      case TraceName::kRunProbe:
        switch (e.args[1]) {
          case kTraceProbeFilteredOut:
            filtered_out++;
            break;
          case kTraceProbeNotPresent:
            false_positives++;
            runs_probed++;
            break;
          case kTraceProbeFound:
          case kTraceProbeDeleted:
            runs_probed++;
            break;
          default:
            ADD_FAILURE() << "unknown probe outcome " << e.args[1];
        }
        // Predicted FPR annotation (Eq. 5/6 plan, ppb): present and sane
        // for every probed run.
        EXPECT_GE(e.args[2], 0);
        EXPECT_LE(e.args[2], 1000000000);
        break;
      default:
        break;
    }
  }

  // The span tree covers the whole vertical slice of the read path...
  EXPECT_EQ(get_spans, 1u);
  EXPECT_EQ(memtable_spans, 1u);
  // ...and each run probe ran exactly one filter probe.
  EXPECT_EQ(filter_spans, runs_probed + filtered_out);
  // Eq. 3 reconciliation: the spans' outcomes are the PerfContext counts.
  EXPECT_EQ(runs_probed, perf.runs_probed);
  EXPECT_EQ(filtered_out, perf.filter_negatives);
  EXPECT_EQ(false_positives, perf.bloom_false_positives);
}

// SLOWLOG through a real server: with a 1µs threshold everything is
// "slow", so a round of commands must land in the log with duration,
// argv, and a non-empty span tree; RESET empties it.
TEST(SlowlogTest, CapturesSlowCommandsWithSpanTree) {
  ServerOptions opts;
  opts.server_port = 0;
  opts.slowlog_threshold_us = 1;
  auto env = NewMemEnv();
  opts.db_options.env = env.get();
  std::unique_ptr<MonkeyServer> server;
  ASSERT_TRUE(MonkeyServer::Start(opts, "/server", &server).ok());

  RespClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()).ok());
  RespReply r;
  // Fat payloads so each run reliably crosses the 1µs threshold.
  const std::string fat(16384, 'x');
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(c.Command({"SET", "slow" + std::to_string(i), fat}, &r).ok());
    ASSERT_TRUE(c.Command({"GET", "slow" + std::to_string(i)}, &r).ok());
  }

  ASSERT_TRUE(c.Command({"SLOWLOG", "LEN"}, &r).ok());
  ASSERT_EQ(r.type, RespReply::Type::kInteger);
  ASSERT_GT(r.integer, 0);

  ASSERT_TRUE(c.Command({"SLOWLOG", "GET", "5"}, &r).ok());
  ASSERT_EQ(r.type, RespReply::Type::kArray);
  ASSERT_GT(r.elements.size(), 0u);
  bool saw_command_span = false;
  for (const RespReply& entry : r.elements) {
    ASSERT_EQ(entry.type, RespReply::Type::kArray);
    ASSERT_EQ(entry.elements.size(), 5u);
    EXPECT_EQ(entry.elements[0].type, RespReply::Type::kInteger);  // id
    EXPECT_GT(entry.elements[1].integer, 0);  // unix timestamp
    EXPECT_GE(entry.elements[2].integer, 1);  // duration_us >= threshold
    EXPECT_EQ(entry.elements[3].type, RespReply::Type::kArray);
    ASSERT_GT(entry.elements[3].elements.size(), 0u);
    // The captured span tree names the command span that timed this run.
    if (entry.elements[4].str.find("server.command") != std::string::npos) {
      saw_command_span = true;
    }
  }
  EXPECT_TRUE(saw_command_span);

  ASSERT_TRUE(c.Command({"SLOWLOG", "RESET"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kSimple);
  // With a 1µs threshold the RESET run itself is slow and re-enters the
  // (just-emptied) log, so "empty" here means at most that one entry.
  ASSERT_TRUE(c.Command({"SLOWLOG", "LEN"}, &r).ok());
  EXPECT_LE(r.integer, 1);

  server->Stop();
}

// DumpTrace's Chrome JSON must survive the external tooling unchanged:
// tools/trace_view.py --check parses it, rebuilds the span forest, and
// exits nonzero on any nesting violation (unmatched end, mismatched
// names, unclosed begin). A traced MultiGet + Write make a trace with
// real nesting across read and write paths.
TEST(TraceTest, DumpTraceRoundTripsThroughTraceView) {
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }

  SetTraceSampleRate(0.0);
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  for (int i = 0; i < 1000; i++) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }

  FlightRecorder::Global()->Clear();
  WriteOptions traced_write;
  traced_write.trace = true;
  ASSERT_TRUE(db->Put(traced_write, "traced", "v").ok());
  ReadOptions traced_read;
  traced_read.trace = true;
  std::string value;
  (void)db->Get(traced_read, "key1", &value);
  std::vector<Slice> keys = {"key2", "absent", "key3"};
  std::vector<std::string> values;
  (void)db->MultiGet(traced_read, keys, &values);

  const std::string json = db->DumpTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("db.get"), std::string::npos);

  const std::string path = "trace_roundtrip.json";  // Test's working dir.
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << json;
  }
  const std::string cmd = "python3 " MONKEYDB_SOURCE_DIR
                          "/tools/trace_view.py --check " +
                          path + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "trace_view.py rejected DumpTrace output";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace monkeydb
