// End-to-end smoke test: open a DB on the in-memory env, write, read,
// flush, and reopen.

#include <gtest/gtest.h>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"

namespace monkeydb {
namespace {

TEST(Smoke, PutGetFlushReopen) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 16 << 10;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  ReadOptions ro;
  for (int i = 0; i < 2000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string val = "value" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, val).ok());
  }
  std::string value;
  ASSERT_TRUE(db->Get(ro, "key1234", &value).ok());
  EXPECT_EQ(value, "value1234");
  EXPECT_TRUE(db->Get(ro, "missing", &value).IsNotFound());

  ASSERT_TRUE(db->Delete(wo, "key1234").ok());
  EXPECT_TRUE(db->Get(ro, "key1234", &value).IsNotFound());

  ASSERT_TRUE(db->Flush().ok());
  db.reset();

  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  ASSERT_TRUE(db->Get(ro, "key777", &value).ok());
  EXPECT_EQ(value, "value777");
  EXPECT_TRUE(db->Get(ro, "key1234", &value).IsNotFound());
}

}  // namespace
}  // namespace monkeydb
