#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace monkeydb {
namespace {

TEST(Coding, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xDEADBEEFu,
                     std::numeric_limits<uint32_t>::max()}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(Coding, Fixed64RoundTrip) {
  std::string s;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 32,
                     std::numeric_limits<uint64_t>::max()}) {
    s.clear();
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(Coding, Varint32Boundaries) {
  // Each 7-bit boundary changes the encoded length.
  struct Case {
    uint32_t value;
    int length;
  };
  const Case cases[] = {{0, 1},         {127, 1},      {128, 2},
                        {16383, 2},     {16384, 3},    {2097151, 3},
                        {2097152, 4},   {268435455, 4}, {268435456, 5},
                        {0xFFFFFFFFu, 5}};
  for (const Case& c : cases) {
    std::string s;
    PutVarint32(&s, c.value);
    EXPECT_EQ(static_cast<int>(s.size()), c.length) << c.value;
    uint32_t decoded;
    const char* p = GetVarint32Ptr(s.data(), s.data() + s.size(), &decoded);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(decoded, c.value);
    EXPECT_EQ(p, s.data() + s.size());
  }
}

TEST(Coding, Varint64RandomRoundTrip) {
  Random rng(42);
  std::string s;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; i++) {
    // Bias toward all widths by masking with a random bit count.
    const int bits = 1 + static_cast<int>(rng.Uniform(64));
    const uint64_t v =
        rng.Next() & (bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1));
    values.push_back(v);
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&input, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, VarintLengthMatchesEncoding) {
  Random rng(7);
  for (int i = 0; i < 200; i++) {
    const uint64_t v = rng.Next() >> rng.Uniform(64);
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(VarintLength(v), static_cast<int>(s.size()));
  }
}

TEST(Coding, MalformedVarintRejected) {
  // Five continuation bytes exceed the 32-bit range.
  const char bad[] = {'\xff', '\xff', '\xff', '\xff', '\xff', '\xff'};
  uint32_t v32;
  EXPECT_EQ(GetVarint32Ptr(bad, bad + sizeof(bad), &v32), nullptr);

  // Truncated input.
  std::string s;
  PutVarint32(&s, 1 << 20);
  Slice input(s.data(), 1);
  EXPECT_FALSE(GetVarint32(&input, &v32));
}

TEST(Coding, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, "hello");
  PutLengthPrefixedSlice(&s, "");
  const std::string payload = std::string(300, 'x');
  PutLengthPrefixedSlice(&s, payload);

  Slice input(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.size(), 300u);
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));  // Exhausted.
}

TEST(Coding, LengthPrefixTruncatedBodyRejected) {
  std::string s;
  PutVarint32(&s, 10);
  s += "abc";  // Claims 10 bytes, provides 3.
  Slice input(s);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));
}

}  // namespace
}  // namespace monkeydb
