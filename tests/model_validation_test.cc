// Monte-Carlo model validation: for randomly drawn configurations across
// the design space, the engine's measured behaviour must stay within a
// band of the closed-form models' predictions — and every qualitative
// ordering the paper relies on must hold.

#include <gtest/gtest.h>

#include <cmath>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/cost_model.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

struct Config {
  MergePolicy policy;
  double t;
  size_t buffer_bytes;
  double bits_per_entry;
  int num_keys;
};

struct Outcome {
  double measured_r_monkey;
  double measured_r_uniform;
  double model_r_monkey;
  double model_r_uniform;
  int deepest_level;
};

Outcome RunConfig(const Config& config) {
  Outcome outcome;
  for (int monkey_on = 0; monkey_on <= 1; monkey_on++) {
    auto base = NewMemEnv();
    IoStats stats;
    CountingEnv env(base.get(), &stats, 4096);
    DbOptions options;
    options.env = &env;
    options.merge_policy = config.policy;
    options.size_ratio = config.t;
    options.buffer_size_bytes = config.buffer_bytes;
    options.bits_per_entry = config.bits_per_entry;
    options.expected_entries = config.num_keys;
    if (monkey_on) options.fpr_policy = monkey::NewMonkeyFprPolicy();
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, "/db", &db).ok());
    WriteOptions wo;
    for (int i = 0; i < config.num_keys; i++) {
      char key[24];
      snprintf(key, sizeof(key), "user%012d", i);
      const std::string payload = std::string(48, 'v');
      EXPECT_TRUE(db->Put(wo, key, payload).ok());
    }
    EXPECT_TRUE(db->Flush().ok());
    outcome.deepest_level = db->GetStats().deepest_level;

    Random rng(100 + monkey_on);
    std::string value;
    const int lookups = 4000;
    const auto before = stats.Snapshot();
    for (int i = 0; i < lookups; i++) {
      char key[28];
      snprintf(key, sizeof(key), "user%012llux",
               static_cast<unsigned long long>(
                   rng.Uniform(config.num_keys)));
      db->Get(ReadOptions(), key, &value).ok();
    }
    const double ios = static_cast<double>(
                           (stats.Snapshot() - before).read_ios) /
                       lookups;
    if (monkey_on) {
      outcome.measured_r_monkey = ios;
    } else {
      outcome.measured_r_uniform = ios;
    }
  }

  monkey::DesignPoint d;
  d.policy = config.policy;
  d.size_ratio = config.t;
  d.num_entries = config.num_keys;
  d.entry_size_bits = 64 * 8.0;
  d.buffer_bits = config.buffer_bytes * 8.0;
  d.filter_bits = config.bits_per_entry * config.num_keys;
  d.entries_per_page = 4096.0 / 70.0;
  outcome.model_r_monkey = monkey::ZeroResultLookupCost(d);
  outcome.model_r_uniform = monkey::BaselineZeroResultLookupCost(d);
  return outcome;
}

class ModelValidation : public ::testing::TestWithParam<Config> {};

TEST_P(ModelValidation, EngineTracksModelWithinBand) {
  const Config& config = GetParam();
  const Outcome o = RunConfig(config);

  // Qualitative: whenever the model says Monkey wins clearly, the engine
  // must agree (or be within measurement noise).
  if (o.model_r_monkey < o.model_r_uniform * 0.7 &&
      o.model_r_uniform > 0.05) {
    EXPECT_LT(o.measured_r_monkey, o.measured_r_uniform * 1.05)
        << "model says Monkey should win";
  }

  // Quantitative band: measured within [0.2x, 3x + small absolute slack]
  // of the model. The live tree only approximates the model's geometry
  // (partially filled levels), so the band is generous; the point is the
  // order of magnitude across the whole space.
  EXPECT_LT(o.measured_r_uniform, o.model_r_uniform * 3.0 + 0.08)
      << "uniform measured far above model";
  EXPECT_GT(o.measured_r_uniform, o.model_r_uniform * 0.15 - 0.01)
      << "uniform measured far below model";
  EXPECT_LT(o.measured_r_monkey, o.model_r_monkey * 3.0 + 0.08)
      << "monkey measured far above model";
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpaceSamples, ModelValidation,
    ::testing::Values(
        Config{MergePolicy::kLeveling, 2.0, 16 << 10, 3.0, 30000},
        Config{MergePolicy::kLeveling, 4.0, 32 << 10, 5.0, 40000},
        Config{MergePolicy::kLeveling, 8.0, 16 << 10, 8.0, 30000},
        Config{MergePolicy::kTiering, 3.0, 32 << 10, 4.0, 30000},
        Config{MergePolicy::kTiering, 5.0, 16 << 10, 6.0, 40000},
        Config{MergePolicy::kLazyLeveling, 4.0, 16 << 10, 5.0, 30000}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const char* policy =
          info.param.policy == MergePolicy::kLeveling ? "Lev"
          : info.param.policy == MergePolicy::kTiering ? "Tier"
                                                       : "Lazy";
      return std::string(policy) + "T" +
             std::to_string(static_cast<int>(info.param.t)) + "B" +
             std::to_string(static_cast<int>(info.param.bits_per_entry));
    });

}  // namespace
}  // namespace monkeydb
