// Read-pipelining tests: the prefetching table iterator must be a pure
// performance change — byte-identical key/value sequences at every
// readahead depth, safe cancellation mid-pipeline, and robust against the
// file disappearing underneath an in-flight prefetch (compaction deletes
// inputs while pinned iterators still scan them). DB::MultiGet must match
// an equivalent loop of Gets under one shared snapshot, including while
// writers run concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/block_cache.h"
#include "io/env.h"
#include "lsm/db.h"
#include "sstable/table_builder.h"
#include "sstable/table_reader.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace monkeydb {
namespace {

// --- Table-level: the prefetch pipeline inside TableIterator ---

class TablePrefetchTest : public ::testing::Test {
 protected:
  TablePrefetchTest()
      : env_(NewMemEnv()),
        cache_(256 << 10),
        pool_(4),
        comparator_(BytewiseComparator()) {}

  // Builds /t.sst with n sequential entries and opens a reader backed by
  // the shared block cache.
  std::unique_ptr<TableReader> BuildTable(int n) {
    TableBuilderOptions opts;
    opts.block_size = 4096;
    opts.filter_fpr = 0.01;

    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile("/t.sst", &file).ok());
    TableBuilder builder(opts, file.get());
    for (int i = 0; i < n; i++) {
      std::string key;
      const std::string user_key = UserKey(i);
      AppendInternalKey(&key, user_key, 100, ValueType::kValue);
      const std::string val = Value(i);
      builder.Add(key, val);
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Close().ok());

    std::unique_ptr<RandomAccessFile> read_file;
    EXPECT_TRUE(env_->NewRandomAccessFile("/t.sst", &read_file).ok());
    TableReaderOptions ropts;
    ropts.comparator = &comparator_;
    ropts.block_cache = &cache_;
    ropts.cache_file_id = 7;
    std::unique_ptr<TableReader> table;
    EXPECT_TRUE(TableReader::Open(ropts, std::move(read_file),
                                  builder.file_size(), &table)
                    .ok());
    return table;
  }

  static std::string UserKey(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  static std::string Value(int i) {
    return "value-" + std::to_string(i) + "-" + std::string(40, 'v');
  }

  // Full forward scan from start_key (empty = SeekToFirst), collecting
  // (key, value) bytes.
  static std::vector<std::pair<std::string, std::string>> Collect(
      const TableReader& table, const TableScanOptions& scan,
      const std::string& start_key = std::string()) {
    std::vector<std::pair<std::string, std::string>> out;
    auto iter = table.NewIterator(scan);
    if (start_key.empty()) {
      iter->SeekToFirst();
    } else {
      std::string internal;
      AppendInternalKey(&internal, start_key, kMaxSequenceNumber,
                        ValueType::kValue);
      iter->Seek(internal);
    }
    for (; iter->Valid(); iter->Next()) {
      out.emplace_back(iter->key().ToString(), iter->value().ToString());
    }
    EXPECT_TRUE(iter->status().ok());
    return out;
  }

  std::unique_ptr<Env> env_;
  BlockCache cache_;
  ThreadPool pool_;
  InternalKeyComparator comparator_;
};

TEST_F(TablePrefetchTest, ByteIdenticalAtEveryDepth) {
  auto table = BuildTable(6000);
  const auto baseline = Collect(*table, TableScanOptions());
  ASSERT_EQ(baseline.size(), 6000u);

  for (int depth : {1, 2, 4, 8}) {
    TableScanOptions scan;
    scan.readahead_blocks = depth;
    scan.pool = &pool_;
    EXPECT_EQ(Collect(*table, scan), baseline) << "depth " << depth;
  }
}

TEST_F(TablePrefetchTest, ByteIdenticalWithoutPool) {
  // readahead_blocks > 0 with no pool: hint-only mode. The iterator issues
  // async-read hints but performs every read itself.
  auto table = BuildTable(4000);
  const auto baseline = Collect(*table, TableScanOptions());

  TableScanOptions scan;
  scan.readahead_blocks = 4;
  scan.pool = nullptr;
  EXPECT_EQ(Collect(*table, scan), baseline);
}

TEST_F(TablePrefetchTest, SeekMatchesAfterPipelineRestart) {
  // Seek cancels any in-flight prefetch and restarts the pipeline; the
  // tail of the scan must still be byte-identical.
  auto table = BuildTable(6000);
  TableScanOptions scan;
  scan.readahead_blocks = 4;
  scan.pool = &pool_;

  Random rng(42);
  for (int trial = 0; trial < 10; trial++) {
    const int start = static_cast<int>(rng.Uniform(6000));
    const auto expected =
        Collect(*table, TableScanOptions(), UserKey(start));
    EXPECT_EQ(Collect(*table, scan, UserKey(start)), expected)
        << "start " << start;
  }
}

TEST_F(TablePrefetchTest, DestructionMidPipeline) {
  // Destroying the iterator with prefetches in flight must block until
  // started reads finish and must not leak or touch freed state (ASan /
  // TSan verify the latter).
  auto table = BuildTable(6000);
  Random rng(7);
  for (int trial = 0; trial < 50; trial++) {
    TableScanOptions scan;
    scan.readahead_blocks = 8;
    scan.pool = &pool_;
    auto iter = table->NewIterator(scan);
    std::string internal;
    const std::string user_key = UserKey(static_cast<int>(rng.Uniform(5000)));
    AppendInternalKey(&internal, user_key,
                      kMaxSequenceNumber, ValueType::kValue);
    iter->Seek(internal);
    for (int i = 0; i < static_cast<int>(rng.Uniform(3)); i++) {
      if (iter->Valid()) iter->Next();
    }
    // iter destroyed here, mid-pipeline.
  }
}

TEST_F(TablePrefetchTest, SurvivesFileRemovalMidScan) {
  // Compaction deletes input files while pinned iterators still scan them;
  // the environment keeps deleted-but-open files readable (POSIX unlink
  // semantics). A scan with prefetches in flight must complete unchanged
  // even after RemoveFile + BlockCache::EraseFile.
  auto table = BuildTable(6000);
  const auto baseline = Collect(*table, TableScanOptions());

  TableScanOptions scan;
  scan.readahead_blocks = 8;
  scan.pool = &pool_;
  auto iter = table->NewIterator(scan);
  std::vector<std::pair<std::string, std::string>> got;
  iter->SeekToFirst();
  for (int i = 0; i < 1000 && iter->Valid(); i++, iter->Next()) {
    got.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  // "Compaction" deletes the file and purges its cache entries while the
  // pipeline is live.
  ASSERT_TRUE(env_->RemoveFile("/t.sst").ok());
  cache_.EraseFile(7);
  for (; iter->Valid(); iter->Next()) {
    got.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(got, baseline);
}

// --- DB-level: readahead through ReadOptions, and MultiGet ---

struct TestDb {
  std::unique_ptr<Env> env;
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<DB> db;
};

TestDb OpenDb(MergePolicy policy, int num_keys,
              int scan_readahead_blocks = 0) {
  TestDb t;
  t.env = NewMemEnv();
  t.cache = std::make_unique<BlockCache>(128 << 10);
  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = policy;
  options.buffer_size_bytes = 16 << 10;
  options.bits_per_entry = 5.0;
  options.block_cache = t.cache.get();
  options.scan_readahead_blocks = scan_readahead_blocks;
  EXPECT_TRUE(DB::Open(options, "/db", &t.db).ok());

  WriteOptions wo;
  for (int i = 0; i < num_keys; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    const std::string key = "v" + std::to_string(i);
    EXPECT_TRUE(t.db->Put(wo, buf, key).ok());
  }
  // A few deletes so scans also cross tombstones.
  for (int i = 0; i < num_keys; i += 97) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    EXPECT_TRUE(t.db->Delete(wo, buf).ok());
  }
  EXPECT_TRUE(t.db->Flush().ok());
  return t;
}

std::vector<std::pair<std::string, std::string>> CollectDb(
    DB* db, int readahead, const std::string& start = std::string()) {
  ReadOptions ro;
  ro.readahead_blocks = readahead;
  std::vector<std::pair<std::string, std::string>> out;
  auto iter = db->NewIterator(ro);
  if (start.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(start);
  }
  for (; iter->Valid(); iter->Next()) {
    out.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  EXPECT_TRUE(iter->status().ok());
  return out;
}

TEST(DbPrefetch, ScanMatchesNoReadahead) {
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering,
        MergePolicy::kLazyLeveling}) {
    TestDb t = OpenDb(policy, 8000);
    const auto baseline = CollectDb(t.db.get(), 0);
    ASSERT_FALSE(baseline.empty());
    for (int depth : {2, 4, 8}) {
      EXPECT_EQ(CollectDb(t.db.get(), depth), baseline) << "depth " << depth;
    }
    EXPECT_EQ(CollectDb(t.db.get(), 4, "key004321"),
              CollectDb(t.db.get(), 0, "key004321"));
  }
}

TEST(DbPrefetch, ScanAcrossCompaction) {
  // An iterator pins its ReadView; a full compaction underneath it deletes
  // every input file (and purges their cache blocks) while its prefetch
  // pipeline is live. The scan must still return the pinned view's data.
  TestDb t = OpenDb(MergePolicy::kTiering, 8000);
  const auto baseline = CollectDb(t.db.get(), 0);

  ReadOptions ro;
  ro.readahead_blocks = 8;
  auto iter = t.db->NewIterator(ro);
  std::vector<std::pair<std::string, std::string>> got;
  iter->SeekToFirst();
  for (int i = 0; i < 500 && iter->Valid(); i++, iter->Next()) {
    got.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  ASSERT_TRUE(t.db->CompactAll().ok());
  for (; iter->Valid(); iter->Next()) {
    got.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(got, baseline);
}

TEST(DbPrefetch, IteratorDestructionUnderWriters) {
  TestDb t = OpenDb(MergePolicy::kLeveling, 6000);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    WriteOptions wo;
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      char buf[16];
      snprintf(buf, sizeof(buf), "key%06d", i++ % 6000);
      ASSERT_TRUE(t.db->Put(wo, buf, "rewrite").ok());
    }
  });
  Random rng(3);
  for (int trial = 0; trial < 100; trial++) {
    ReadOptions ro;
    ro.readahead_blocks = 8;
    auto iter = t.db->NewIterator(ro);
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d",
             static_cast<int>(rng.Uniform(6000)));
    iter->Seek(buf);
    for (int i = 0; i < 5 && iter->Valid(); i++) iter->Next();
    // Destroyed mid-pipeline, possibly while a flush retires the view.
  }
  stop.store(true);
  writer.join();
}

TEST(MultiGet, MatchesGetLoop) {
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering,
        MergePolicy::kLazyLeveling}) {
    TestDb t = OpenDb(policy, 8000);
    Random rng(11);
    ReadOptions ro;
    for (int batch = 0; batch < 20; batch++) {
      std::vector<std::string> storage;
      for (int i = 0; i < 32; i++) {
        const int k = static_cast<int>(rng.Uniform(10000));  // Some absent.
        char buf[16];
        snprintf(buf, sizeof(buf), "key%06d", k);
        storage.push_back(buf);
      }
      storage.push_back(storage.front());  // Duplicate key in one batch.
      std::vector<Slice> keys(storage.begin(), storage.end());

      std::vector<std::string> values;
      std::vector<Status> statuses = t.db->MultiGet(ro, keys, &values);
      ASSERT_EQ(statuses.size(), keys.size());
      ASSERT_EQ(values.size(), keys.size());
      for (size_t i = 0; i < keys.size(); i++) {
        std::string expected;
        const Status s = t.db->Get(ro, keys[i], &expected);
        EXPECT_EQ(statuses[i].ok(), s.ok()) << storage[i];
        EXPECT_EQ(statuses[i].IsNotFound(), s.IsNotFound()) << storage[i];
        if (s.ok()) EXPECT_EQ(values[i], expected) << storage[i];
      }
    }
    EXPECT_EQ(t.db->GetStats().multigets, 20u);
  }
}

TEST(MultiGet, EmptyBatch) {
  TestDb t = OpenDb(MergePolicy::kLeveling, 100);
  std::vector<std::string> values{"stale"};
  EXPECT_TRUE(t.db->MultiGet(ReadOptions(), {}, &values).empty());
  EXPECT_TRUE(values.empty());
}

TEST(MultiGet, SharedSnapshotUnderConcurrentWriters) {
  TestDb t = OpenDb(MergePolicy::kLazyLeveling, 4000);
  const Snapshot* snapshot = t.db->GetSnapshot();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&, w] {
      WriteOptions wo;
      Random rng(100 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.Uniform(4000));
        char buf[16];
        snprintf(buf, sizeof(buf), "key%06d", k);
        ASSERT_TRUE(t.db->Put(wo, buf, "overwritten").ok());
      }
    });
  }

  ReadOptions ro;
  ro.snapshot = snapshot;
  Random rng(5);
  for (int batch = 0; batch < 30; batch++) {
    std::vector<std::string> storage;
    for (int i = 0; i < 16; i++) {
      char buf[16];
      snprintf(buf, sizeof(buf), "key%06d",
               static_cast<int>(rng.Uniform(4000)));
      storage.push_back(buf);
    }
    std::vector<Slice> keys(storage.begin(), storage.end());
    std::vector<std::string> values;
    std::vector<Status> statuses = t.db->MultiGet(ro, keys, &values);
    for (size_t i = 0; i < keys.size(); i++) {
      // Both paths read at the shared snapshot: never an overwrite, and
      // identical to a Get at the same snapshot.
      std::string expected;
      const Status s = t.db->Get(ro, keys[i], &expected);
      EXPECT_EQ(statuses[i].ok(), s.ok()) << storage[i];
      if (s.ok()) {
        EXPECT_EQ(values[i], expected) << storage[i];
        EXPECT_NE(values[i], "overwritten") << storage[i];
      }
    }
  }

  stop.store(true);
  for (auto& w : writers) w.join();
  t.db->ReleaseSnapshot(snapshot);
}

}  // namespace
}  // namespace monkeydb
