// Tests for the lazy-leveling extension (hybrid merge policy): engine
// structural invariants, correctness against a reference model, and the
// generalized numeric FPR allocation that supports it.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/cost_model.h"
#include "monkey/fpr_allocator.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

DbOptions LazyOptions(Env* env, double t = 4.0) {
  DbOptions options;
  options.env = env;
  options.merge_policy = MergePolicy::kLazyLeveling;
  options.size_ratio = t;
  options.buffer_size_bytes = 8 << 10;
  options.bits_per_entry = 5.0;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  return options;
}

TEST(LazyLeveling, StructuralInvariant) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(LazyOptions(env.get()), "/db", &db).ok());
  WriteOptions wo;
  Random rng(1);
  for (int i = 0; i < 30000; i++) {
    const std::string key = "k" + std::to_string(rng.Next());
    const std::string payload = std::string(32, 'v');
    ASSERT_TRUE(
        db->Put(wo, key, payload)
            .ok());
  }
  const DbStats stats = db->GetStats();
  ASSERT_GE(stats.deepest_level, 3);
  // Largest level: exactly one run. Shallower levels: < T runs each.
  for (int level = 1; level <= stats.deepest_level; level++) {
    const uint64_t runs = stats.runs_per_level[level - 1];
    if (level == stats.deepest_level) {
      EXPECT_EQ(runs, 1u) << "largest level must hold a single run";
    } else {
      EXPECT_LT(runs, 4u) << "level " << level;
    }
  }
}

TEST(LazyLeveling, RandomizedAgainstReferenceModel) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(LazyOptions(env.get(), 3.0), "/db", &db).ok());
  std::map<std::string, std::optional<std::string>> model;
  Random rng(77);
  WriteOptions wo;
  ReadOptions ro;
  for (int op = 0; op < 6000; op++) {
    const std::string key = "key" + std::to_string(rng.Uniform(1200));
    if (rng.Bernoulli(0.75)) {
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(db->Put(wo, key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(db->Delete(wo, key).ok());
      model[key] = std::nullopt;
    }
  }
  for (const auto& [key, expected] : model) {
    std::string value;
    Status s = db->Get(ro, key, &value);
    if (expected.has_value()) {
      ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
      EXPECT_EQ(value, *expected);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key;
    }
  }
  // Recovery too.
  db.reset();
  ASSERT_TRUE(DB::Open(LazyOptions(env.get(), 3.0), "/db", &db).ok());
  std::string value;
  for (const auto& [key, expected] : model) {
    Status s = db->Get(ro, key, &value);
    EXPECT_EQ(s.ok(), expected.has_value()) << key;
  }
}

TEST(LazyLeveling, WritesCheaperThanLevelingLookupsCheaperThanTiering) {
  // The hybrid's raison d'etre: W close to tiering, R close to leveling.
  auto measure = [](MergePolicy policy) {
    auto base = NewMemEnv();
    IoStats stats;
    CountingEnv env(base.get(), &stats, 4096);
    DbOptions options;
    options.env = &env;
    options.merge_policy = policy;
    options.size_ratio = 4.0;
    options.buffer_size_bytes = 16 << 10;
    options.bits_per_entry = 5.0;
    options.expected_entries = 40000;
    options.fpr_policy = monkey::NewMonkeyFprPolicy();
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, "/db", &db).ok());
    WriteOptions wo;
    for (int i = 0; i < 40000; i++) {
      char key[24];
      snprintf(key, sizeof(key), "user%012d", i);
      const std::string payload = std::string(48, 'v');
      EXPECT_TRUE(db->Put(wo, key, payload).ok());
    }
    EXPECT_TRUE(db->Flush().ok());
    const double write_ios = static_cast<double>(
        stats.Snapshot().write_ios);

    ReadOptions ro;
    Random rng(5);
    std::string value;
    const auto before = stats.Snapshot();
    for (int i = 0; i < 3000; i++) {
      char key[28];
      snprintf(key, sizeof(key), "user%012llux",
               static_cast<unsigned long long>(rng.Uniform(40000)));
      db->Get(ro, key, &value).ok();
    }
    const double read_ios =
        static_cast<double>((stats.Snapshot() - before).read_ios) / 3000;
    return std::pair<double, double>(write_ios, read_ios);
  };

  const auto [lev_w, lev_r] = measure(MergePolicy::kLeveling);
  const auto [tier_w, tier_r] = measure(MergePolicy::kTiering);
  const auto [lazy_w, lazy_r] = measure(MergePolicy::kLazyLeveling);

  EXPECT_LT(lazy_w, lev_w) << "lazy leveling must write less than leveling";
  EXPECT_LE(lazy_r, tier_r + 0.02)
      << "lazy leveling lookups must not exceed tiering's";
}

// --- Generalized numeric allocation ---

TEST(GeometryAllocation, MatchesClosedFormForPureLeveling) {
  const double n = 1e7;
  const int levels = 5;
  const double t = 4.0;
  const double budget = 5.0 * n;
  const auto geometry =
      monkey::CapacityGeometry(MergePolicy::kLeveling, t, levels, n);
  const monkey::FprVector numeric =
      monkey::OptimalFprsForGeometry(geometry, budget);
  const monkey::FprVector closed = monkey::OptimalFprsForMemory(
      MergePolicy::kLeveling, t, levels, n, budget);
  // Same cost within a few percent (the closed form uses the infinite-
  // series approximation).
  const double numeric_r =
      monkey::LookupCostForGeometry(geometry, numeric);
  const double closed_r =
      monkey::LookupCostForFprs(MergePolicy::kLeveling, t, closed);
  EXPECT_NEAR(numeric_r, closed_r, closed_r * 0.10 + 1e-6);
  // FPRs geometric in the level capacities.
  for (int i = 0; i + 1 < levels; i++) {
    EXPECT_NEAR(numeric[i + 1] / numeric[i], t, t * 0.01);
  }
}

TEST(GeometryAllocation, SpendsTheBudget) {
  const double n = 1e6;
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering,
        MergePolicy::kLazyLeveling}) {
    const auto geometry = monkey::CapacityGeometry(policy, 4.0, 5, n);
    const double budget = 6.0 * n;
    const auto fprs = monkey::OptimalFprsForGeometry(geometry, budget);
    double memory = 0;
    for (size_t i = 0; i < geometry.size(); i++) {
      memory += -geometry[i].entries * std::log(fprs[i]) /
                0.4804530139182014;
    }
    EXPECT_NEAR(memory, budget, budget * 0.01)
        << "policy " << static_cast<int>(policy);
  }
}

TEST(GeometryAllocation, ZeroBudgetMeansNoFilters) {
  const auto geometry =
      monkey::CapacityGeometry(MergePolicy::kLazyLeveling, 4.0, 4, 1e6);
  const auto fprs = monkey::OptimalFprsForGeometry(geometry, 0.0);
  for (double p : fprs) EXPECT_DOUBLE_EQ(p, 1.0);
}

// --- Lazy-leveling cost model ---

TEST(LazyLevelingModel, SitsBetweenLevelingAndTiering) {
  monkey::DesignPoint d;
  d.size_ratio = 6.0;
  d.num_entries = 1e8;
  d.entry_size_bits = 128 * 8;
  d.buffer_bits = 2.0 * (1 << 20) * 8;
  d.filter_bits = 8.0 * d.num_entries;
  d.entries_per_page = 32;

  monkey::DesignPoint lev = d, tier = d, lazy = d;
  lev.policy = MergePolicy::kLeveling;
  tier.policy = MergePolicy::kTiering;
  lazy.policy = MergePolicy::kLazyLeveling;

  // Updates: lazy between tiering (cheapest) and leveling.
  EXPECT_LT(monkey::UpdateCost(tier), monkey::UpdateCost(lazy));
  EXPECT_LT(monkey::UpdateCost(lazy), monkey::UpdateCost(lev));

  // Zero-result lookups with Monkey filters: lazy close to leveling, far
  // below tiering.
  const double r_lev = monkey::ZeroResultLookupCost(lev);
  const double r_tier = monkey::ZeroResultLookupCost(tier);
  const double r_lazy = monkey::ZeroResultLookupCost(lazy);
  EXPECT_LT(r_lazy, r_tier);
  EXPECT_LT(r_lazy, r_lev * 3.0);

  // Monkey dominates uniform for the hybrid too.
  EXPECT_LE(r_lazy, monkey::BaselineZeroResultLookupCost(lazy) + 1e-9);
}

TEST(LazyLevelingModel, DegeneratesAtOneLevel) {
  monkey::DesignPoint d;
  d.policy = MergePolicy::kLazyLeveling;
  d.size_ratio = 4.0;
  d.num_entries = 1000;
  d.entry_size_bits = 8;
  d.buffer_bits = 1e6;  // Everything fits in the buffer's first level.
  d.filter_bits = 5000;
  d.entries_per_page = 32;
  ASSERT_EQ(monkey::NumLevels(d), 1);
  // One level: identical to leveling.
  monkey::DesignPoint lev = d;
  lev.policy = MergePolicy::kLeveling;
  EXPECT_NEAR(monkey::UpdateCost(d), monkey::UpdateCost(lev), 1e-12);
  EXPECT_NEAR(monkey::MaxRuns(d), monkey::MaxRuns(lev), 1e-12);
}

}  // namespace
}  // namespace monkeydb
