// Group-commit semantics: a sync writer must never be acknowledged before
// its batch is durable, grouped batches keep per-batch atomicity, failed
// group members must not report success, and merged WAL records must
// replay every member's batch on recovery. The concurrent tests are also
// exercised under TSan/ASan/UBSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "io/fault_env.h"
#include "lsm/db.h"

namespace monkeydb {
namespace {

class GroupCommitTest : public ::testing::Test {
 protected:
  GroupCommitTest() : base_env_(NewMemEnv()), env_(base_env_.get()) {}

  DbOptions MakeOptions() {
    DbOptions options;
    options.env = &env_;
    return options;
  }

  std::unique_ptr<Env> base_env_;
  FaultInjectionEnv env_;
  ReadOptions ro_;
};

// A sync Put issues (at least) WAL header append, payload append, fsync.
// Failing the fsync must fail the Put: the writer was never durable, so
// acknowledging it would violate the sync contract. The entry must also
// not become visible in this process.
TEST_F(GroupCommitTest, SyncWriterNotAckedBeforeDurable) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());

  WriteOptions sync_wo;
  sync_wo.sync = true;
  // Ops 1-2 (the two WAL appends) succeed; op 3 (the Sync) fails.
  env_.ScheduleWriteFault(2);
  Status s = db->Put(sync_wo, "durable?", "no");
  EXPECT_TRUE(s.IsIoError()) << s.ToString();

  std::string value;
  EXPECT_TRUE(db->Get(ro_, "durable?", &value).IsNotFound());

  // Once the device recovers, the commit path is usable again.
  env_.ResetFaults();
  ASSERT_TRUE(db->Put(sync_wo, "after", "v").ok());
  ASSERT_TRUE(db->Get(ro_, "after", &value).ok());
  EXPECT_EQ(value, "v");
}

// Under a mid-run WAL failure with many concurrent writers, every Put that
// returned ok() must be readable and every Put that failed must not be:
// a follower whose batch was not applied must never see success, and a
// leader must not apply batches whose WAL record did not land.
TEST_F(GroupCommitTest, FailedGroupMembersSeeTheError) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());

  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 200;
  // Each thread records how far it got before the injected failure.
  std::vector<int> acked(kThreads, 0);
  std::atomic<int> failures{0};

  env_.ScheduleWriteFault(400);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < kWritesPerThread; i++) {
        const std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        if (!db->Put(wo, key, "v").ok()) {
          failures.fetch_add(1);
          break;
        }
        acked[t] = i + 1;
      }
    });
  }
  for (auto& w : writers) w.join();
  env_.ResetFaults();
  EXPECT_GT(failures.load(), 0) << "fault never surfaced";

  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < acked[t]; i++) {
      const std::string key =
          "t" + std::to_string(t) + "_" + std::to_string(i);
      EXPECT_TRUE(db->Get(ro_, key, &value).ok())
          << "acked write missing: " << key;
    }
    // The first unacked write (if the thread failed) was reported as an
    // error and must not have been applied.
    if (acked[t] < kWritesPerThread) {
      const std::string key =
          "t" + std::to_string(t) + "_" + std::to_string(acked[t]);
      EXPECT_TRUE(db->Get(ro_, key, &value).IsNotFound())
          << "failed write visible: " << key;
    }
  }
}

// Concurrent multi-op batches grouped into shared WAL records must stay
// atomic: a snapshot reader either sees all four slots of a generation or
// none of it mixed. Also checks the final state, which would be corrupted
// if two batches ever received overlapping sequence numbers.
TEST_F(GroupCommitTest, InterleavedBatchesStayAtomic) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());

  constexpr int kThreads = 4;
  constexpr int kSlots = 4;
  constexpr int kGenerations = 120;

  std::atomic<bool> stop{false};
  std::atomic<int> atomicity_violations{0};
  std::atomic<int> write_errors{0};

  // Seed generation 0 so readers always find the slots.
  for (int t = 0; t < kThreads; t++) {
    WriteBatch batch;
    for (int k = 0; k < kSlots; k++) {
      const std::string key =
          "t" + std::to_string(t) + "_slot" + std::to_string(k);
      batch.Put(key, "0");
    }
    ASSERT_TRUE(db->Write(WriteOptions(), batch).ok());
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&, t] {
      WriteOptions wo;
      for (int gen = 1; gen <= kGenerations; gen++) {
        WriteBatch batch;
        for (int k = 0; k < kSlots; k++) {
          const std::string key =
              "t" + std::to_string(t) + "_slot" + std::to_string(k);
          const std::string val = std::to_string(gen);
          batch.Put(key, val);
        }
        if (!db->Write(wo, batch).ok()) {
          write_errors.fetch_add(1);
          return;
        }
      }
    });
  }
  // Two snapshot readers checking all-or-nothing visibility per batch.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const int t = r % kThreads;
        const Snapshot* snap = db->GetSnapshot();
        ReadOptions snap_ro;
        snap_ro.snapshot = snap;
        std::string first, value;
        bool ok = true;
        for (int k = 0; k < kSlots && ok; k++) {
          const std::string key =
              "t" + std::to_string(t) + "_slot" + std::to_string(k);
          ok = db->Get(snap_ro, key, &value).ok();
          if (k == 0) first = value;
          if (ok && value != first) atomicity_violations.fetch_add(1);
        }
        if (!ok) atomicity_violations.fetch_add(1);
        db->ReleaseSnapshot(snap);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(write_errors.load(), 0);
  EXPECT_EQ(atomicity_violations.load(), 0);
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int k = 0; k < kSlots; k++) {
      const std::string key =
          "t" + std::to_string(t) + "_slot" + std::to_string(k);
      ASSERT_TRUE(db->Get(ro_, key, &value).ok());
      EXPECT_EQ(value, std::to_string(kGenerations));
    }
  }
}

// Merged group records in the WAL must replay every member batch with the
// right contents after a crash, and writes acknowledged as sync must be
// there. Mixed sync and non-sync writers share groups.
TEST_F(GroupCommitTest, GroupedRecordsSurviveReopen) {
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
    constexpr int kThreads = 6;
    constexpr int kWritesPerThread = 150;
    std::atomic<int> write_errors{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; t++) {
      writers.emplace_back([&, t] {
        WriteOptions wo;
        wo.sync = (t % 2 == 0);  // Mix sync and non-sync group members.
        for (int i = 0; i < kWritesPerThread; i++) {
          WriteBatch batch;
          const std::string key =
              "t" + std::to_string(t) + "_" + std::to_string(i);
          const std::string val = "v" + std::to_string(i);
          batch.Put(key, val);
          const std::string dup_key = "t" + std::to_string(t) + "_dup";
          const std::string dup_val = std::to_string(i);
          batch.Put(dup_key, dup_val);
          if (!db->Write(wo, batch).ok()) {
            write_errors.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& w : writers) w.join();
    ASSERT_EQ(write_errors.load(), 0);
    db.reset();  // "Crash": memtable contents only exist in the WAL.
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  std::string value;
  for (int t = 0; t < 6; t++) {
    for (int i = 0; i < 150; i++) {
      const std::string key =
          "t" + std::to_string(t) + "_" + std::to_string(i);
      ASSERT_TRUE(db->Get(ro_, key, &value).ok()) << "t" << t << " i" << i;
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
    const std::string dup_key = "t" + std::to_string(t) + "_dup";
    ASSERT_TRUE(db->Get(ro_, dup_key, &value).ok());
    EXPECT_EQ(value, "149");  // Last write per thread wins.
  }
}

// The group byte cap bounds how much one leader commits at once; huge
// batches still go through (a group always admits its first member).
TEST_F(GroupCommitTest, ByteCapAdmitsOversizedSingleton) {
  DbOptions options = MakeOptions();
  options.max_write_group_bytes = 256;  // Tiny cap.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteBatch big;
  for (int i = 0; i < 100; i++) {
    const std::string key = "big" + std::to_string(i);
    const std::string val(64, 'x');
    big.Put(key, val);
  }
  ASSERT_TRUE(db->Write(WriteOptions(), big).ok());

  // Concurrent small writers under the tiny cap still all commit.
  std::vector<std::thread> writers;
  std::atomic<int> write_errors{0};
  for (int t = 0; t < 4; t++) {
    writers.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < 100; i++) {
        const std::string key =
            "s" + std::to_string(t) + "_" + std::to_string(i);
        if (!db->Put(wo, key, "v").ok()) {
          write_errors.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(write_errors.load(), 0);

  std::string value;
  ASSERT_TRUE(db->Get(ro_, "big99", &value).ok());
  for (int t = 0; t < 4; t++) {
    const std::string key = "s" + std::to_string(t) + "_99";
    ASSERT_TRUE(db->Get(ro_, key, &value).ok());
  }
}

}  // namespace
}  // namespace monkeydb
