// SSTable builder/reader tests: round trips, fence-pointer probe costs
// (exactly one page I/O per probe), filter behaviour, page alignment,
// corruption detection.

#include <gtest/gtest.h>

#include <map>

#include "io/counting_env.h"
#include "io/env.h"
#include "sstable/table_builder.h"
#include "sstable/table_reader.h"
#include "util/random.h"

namespace monkeydb {
namespace {

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : env_(NewMemEnv()),
        counting_env_(env_.get(), &stats_, kPageSize),
        comparator_(BytewiseComparator()) {}

  static constexpr size_t kPageSize = 4096;

  // Builds a table with n sequential entries. Returns its reader.
  std::unique_ptr<TableReader> BuildTable(int n, double fpr,
                                          int value_size = 64) {
    TableBuilderOptions opts;
    opts.block_size = kPageSize;
    opts.filter_fpr = fpr;

    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(counting_env_.NewWritableFile("/t.sst", &file).ok());
    TableBuilder builder(opts, file.get());
    for (int i = 0; i < n; i++) {
      std::string key;
      const std::string user_key = UserKey(i);
      AppendInternalKey(&key, user_key, 100, ValueType::kValue);
      const std::string payload = std::string(value_size, 'v');
      builder.Add(key, payload);
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Close().ok());
    file_size_ = builder.file_size();
    num_blocks_ = builder.num_data_blocks();

    std::unique_ptr<RandomAccessFile> read_file;
    EXPECT_TRUE(
        counting_env_.NewRandomAccessFile("/t.sst", &read_file).ok());
    TableReaderOptions ropts;
    ropts.comparator = &comparator_;
    std::unique_ptr<TableReader> table;
    EXPECT_TRUE(TableReader::Open(ropts, std::move(read_file), file_size_,
                                  &table)
                    .ok());
    return table;
  }

  static std::string UserKey(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::unique_ptr<Env> env_;
  IoStats stats_;
  CountingEnv counting_env_;
  InternalKeyComparator comparator_;
  uint64_t file_size_ = 0;
  uint64_t num_blocks_ = 0;
};

TEST_F(TableTest, RoundTripViaIterator) {
  auto table = BuildTable(5000, 0.01);
  auto iter = table->NewIterator();
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(i));
  }
  EXPECT_EQ(i, 5000);
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, GetFoundAndAbsent) {
  auto table = BuildTable(5000, 0.01);
  std::string value;
  TableLookupResult result;

  const std::string user_key = UserKey(1234);
  LookupKey present(user_key, kMaxSequenceNumber);
  ASSERT_TRUE(table->Get(present, &value, &result).ok());
  EXPECT_EQ(result, TableLookupResult::kFound);
  EXPECT_EQ(value.size(), 64u);

  LookupKey absent("nosuchkey", kMaxSequenceNumber);
  ASSERT_TRUE(table->Get(absent, &value, &result).ok());
  EXPECT_TRUE(result == TableLookupResult::kFilteredOut ||
              result == TableLookupResult::kNotPresent);
}

TEST_F(TableTest, DataBlocksArePageAligned) {
  BuildTable(5000, 0.01);
  // All data blocks occupy [0, num_blocks * page); the data region size is
  // an exact multiple of the page size.
  EXPECT_GT(num_blocks_, 1u);
  EXPECT_GE(file_size_, num_blocks_ * kPageSize);
}

TEST_F(TableTest, PointProbeCostsExactlyOnePageRead) {
  auto table = BuildTable(20000, /*fpr=*/1.0);  // No filter: always probes.
  Random rng(1);
  for (int trial = 0; trial < 50; trial++) {
    const int target = static_cast<int>(rng.Uniform(20000));
    const std::string user_key = UserKey(target);
    LookupKey lookup(user_key, kMaxSequenceNumber);
    std::string value;
    TableLookupResult result;
    const auto before = stats_.Snapshot();
    ASSERT_TRUE(table->Get(lookup, &value, &result).ok());
    const auto delta = stats_.Snapshot() - before;
    EXPECT_EQ(result, TableLookupResult::kFound);
    // The fence-pointer guarantee (paper Sec. 2): exactly one page I/O.
    EXPECT_EQ(delta.read_ios, 1u) << "target=" << target;
  }
}

TEST_F(TableTest, FilteredProbeCostsZeroIo) {
  auto table = BuildTable(20000, /*fpr=*/0.001);
  int zero_io_lookups = 0;
  const int trials = 200;
  for (int i = 0; i < trials; i++) {
    const std::string key = "absent" + std::to_string(i);
    LookupKey lookup(key, kMaxSequenceNumber);
    std::string value;
    TableLookupResult result;
    const auto before = stats_.Snapshot();
    ASSERT_TRUE(table->Get(lookup, &value, &result).ok());
    const auto delta = stats_.Snapshot() - before;
    if (result == TableLookupResult::kFilteredOut) {
      EXPECT_EQ(delta.read_ios, 0u);
      zero_io_lookups++;
    }
  }
  // At FPR 0.1% essentially all zero-result lookups are filtered.
  EXPECT_GE(zero_io_lookups, trials - 5);
}

TEST_F(TableTest, TombstonesSurfaceAsDeleted) {
  TableBuilderOptions opts;
  opts.block_size = kPageSize;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(counting_env_.NewWritableFile("/t.sst", &file).ok());
  TableBuilder builder(opts, file.get());
  std::string k1, k2;
  AppendInternalKey(&k1, "alive", 10, ValueType::kValue);
  AppendInternalKey(&k2, "dead", 10, ValueType::kDeletion);
  builder.Add(k1, "v");
  builder.Add(k2, "");
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE(file->Close().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(counting_env_.NewRandomAccessFile("/t.sst", &rfile).ok());
  TableReaderOptions ropts;
  ropts.comparator = &comparator_;
  std::unique_ptr<TableReader> table;
  ASSERT_TRUE(TableReader::Open(ropts, std::move(rfile),
                                builder.file_size(), &table)
                  .ok());

  std::string value;
  TableLookupResult result;
  LookupKey dead("dead", kMaxSequenceNumber);
  ASSERT_TRUE(table->Get(dead, &value, &result).ok());
  EXPECT_EQ(result, TableLookupResult::kDeleted);
  LookupKey alive("alive", kMaxSequenceNumber);
  ASSERT_TRUE(table->Get(alive, &value, &result).ok());
  EXPECT_EQ(result, TableLookupResult::kFound);
}

TEST_F(TableTest, SeekWithinIterator) {
  auto table = BuildTable(10000, 0.01);
  auto iter = table->NewIterator();
  std::string seek_key;
  const std::string user_key = UserKey(7777);
  AppendInternalKey(&seek_key, user_key, kMaxSequenceNumber,
                    kValueTypeForSeek);
  iter->Seek(seek_key);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(7777));
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), UserKey(7778));
}

TEST_F(TableTest, CorruptedFileRejected) {
  BuildTable(100, 0.01);
  // Flip a byte in the footer region.
  std::unique_ptr<RandomAccessFile> rfile;
  char scratch[8192];
  Slice contents;
  ASSERT_TRUE(env_->NewRandomAccessFile("/t.sst", &rfile).ok());
  ASSERT_TRUE(rfile->Read(0, sizeof(scratch), &contents, scratch).ok());

  std::string corrupted(contents.data(), contents.size());
  uint64_t full_size;
  ASSERT_TRUE(env_->GetFileSize("/t.sst", &full_size).ok());
  // Rewrite with a truncated/garbled copy.
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env_->NewWritableFile("/bad.sst", &wfile).ok());
  corrupted[100] ^= 0xFF;
  ASSERT_TRUE(wfile->Append(corrupted).ok());
  ASSERT_TRUE(wfile->Close().ok());

  std::unique_ptr<RandomAccessFile> bad;
  ASSERT_TRUE(env_->NewRandomAccessFile("/bad.sst", &bad).ok());
  TableReaderOptions ropts;
  ropts.comparator = &comparator_;
  std::unique_ptr<TableReader> table;
  Status s = TableReader::Open(ropts, std::move(bad), corrupted.size(),
                               &table);
  // Either the footer is unreadable (truncated) or a block CRC fails later;
  // opening must not succeed silently with garbage.
  if (s.ok()) {
    // Data byte 100 was corrupted: reading block 0 must fail the CRC.
    LookupKey lookup("key000000", kMaxSequenceNumber);
    std::string value;
    TableLookupResult result;
    Status get_status = table->Get(lookup, &value, &result);
    EXPECT_FALSE(get_status.ok());
  } else {
    EXPECT_TRUE(s.IsCorruption());
  }
}

TEST_F(TableTest, FilterSizeTracksFprBudget) {
  auto strict = BuildTable(10000, 0.001);
  const uint64_t strict_bits = strict->filter_size_bits();
  auto loose = BuildTable(10000, 0.1);
  const uint64_t loose_bits = loose->filter_size_bits();
  auto none = BuildTable(10000, 1.0);
  EXPECT_GT(strict_bits, loose_bits);
  EXPECT_EQ(none->filter_size_bits(), 0u);
}

}  // namespace
}  // namespace monkeydb
