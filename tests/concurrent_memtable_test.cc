// Concurrent memtable write path: ConcurrentArena backing tiers and
// parallel-allocation safety, lock-free skiplist inserts under N-thread
// fuzz, parallel write-group application through the DB, flushed-SST
// byte-identity between the serial and concurrent modes, and the
// accounting invariants GetStats builds on. Runs under TSan/ASan/UBSan
// in CI, with MONKEYDB_CONCURRENT_MEMTABLE/MONKEYDB_ARENA_HUGEPAGE legs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "lsm/internal_key.h"
#include "memtable/memtable.h"
#include "util/comparator.h"
#include "util/concurrent_arena.h"

namespace monkeydb {
namespace {

constexpr int kThreads = 8;

// --- ConcurrentArena ---

TEST(ConcurrentArena, AlignmentAndUsage) {
  ConcurrentArena arena;
  EXPECT_EQ(arena.MemoryUsage(), 0u);
  char* a = arena.Allocate(10);
  memset(a, 0xAB, 10);
  EXPECT_GE(arena.MemoryUsage(), 10u);

  for (int i = 0; i < 200; i++) {
    arena.Allocate(1 + (i % 7));  // Misalign the bump pointer.
    char* p = arena.AllocateAligned(24, Allocator::kCacheLineSize);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Allocator::kCacheLineSize,
              0u);
  }
  // MemoryUsage counts bytes handed out; the mapped reservation is at
  // least that large (blocks are pre-mapped in coarse granules).
  EXPECT_GE(arena.MappedBytes(), arena.MemoryUsage());
  EXPECT_EQ(static_cast<unsigned char>(a[9]), 0xAB);
}

TEST(ConcurrentArena, OversizedAllocationsGetTheirOwnCarve) {
  ConcurrentArena::Options options;
  options.chunk_size = 64 << 10;
  ConcurrentArena arena(options);
  // Far bigger than a shard chunk: must still succeed and be writable.
  char* big = arena.Allocate(512 << 10);
  ASSERT_NE(big, nullptr);
  memset(big, 0xCD, 512 << 10);
  EXPECT_GE(arena.MemoryUsage(), 512u << 10);
  const ConcurrentArena::StatsSnapshot stats = arena.Stats();
  EXPECT_GE(stats.slow_allocs, 1u);
}

// N threads allocate concurrently and stamp every byte of each allocation
// with a thread-unique pattern; any overlap between two allocations (a
// lost CAS validity bug) corrupts someone's pattern.
TEST(ConcurrentArena, ParallelAllocationsNeverOverlap) {
  ConcurrentArena arena;
  constexpr int kAllocsPerThread = 4000;
  std::vector<std::vector<char*>> ptrs(kThreads);
  std::vector<std::vector<size_t>> sizes(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAllocsPerThread; i++) {
        const size_t n = 1 + ((t * 31 + i * 7) % 120);
        char* p = (i % 3 == 0)
                      ? arena.AllocateAligned(n, Allocator::kCacheLineSize)
                      : arena.Allocate(n);
        ASSERT_NE(p, nullptr);
        memset(p, t + 1, n);
        ptrs[t].push_back(p);
        sizes[t].push_back(n);
      }
    });
  }
  for (auto& th : threads) th.join();

  size_t total = 0;
  for (int t = 0; t < kThreads; t++) {
    for (size_t i = 0; i < ptrs[t].size(); i++) {
      total += sizes[t][i];
      for (size_t b = 0; b < sizes[t][i]; b++) {
        ASSERT_EQ(ptrs[t][i][b], static_cast<char>(t + 1))
            << "allocation overlap, thread " << t << " alloc " << i;
      }
    }
  }
  EXPECT_GE(arena.MemoryUsage(), total);
  EXPECT_GE(arena.Stats().blocks, 1u);
}

// Scoped env-var override (the arena reads MONKEYDB_ARENA_HUGEPAGE at
// construction). Restores the previous value on destruction so CI legs
// that set the variable for the whole suite are not disturbed.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// Each backing tier can be forced and is reported truthfully. kNever must
// always produce plain pages; the hugepage tiers may legitimately fall
// back (no reservations / THP disabled), but whatever the arena reports
// must match its per-tier block counters.
TEST(ConcurrentArena, HugepageTiersReportTheirBacking) {
  struct Case {
    const char* env;
    ConcurrentArena::HugepageMode mode;
  };
  const Case cases[] = {
      {"never", ConcurrentArena::HugepageMode::kNever},
      {"thp", ConcurrentArena::HugepageMode::kTransparentOnly},
      {"auto", ConcurrentArena::HugepageMode::kAuto},
  };
  for (const Case& c : cases) {
    ScopedEnvVar guard("MONKEYDB_ARENA_HUGEPAGE", c.env);
    ConcurrentArena arena;  // Mode comes from the env override.
    char* p = arena.Allocate(1024);
    ASSERT_NE(p, nullptr);
    memset(p, 0x5A, 1024);
    const ConcurrentArena::StatsSnapshot stats = arena.Stats();
    ASSERT_GE(stats.blocks, 1u);
    EXPECT_EQ(stats.hugetlb_blocks + stats.thp_blocks + stats.plain_blocks,
              stats.blocks);
    switch (stats.backing) {
      case ConcurrentArena::Backing::kHugeTlb:
        EXPECT_EQ(c.mode, ConcurrentArena::HugepageMode::kAuto);
        EXPECT_GE(stats.hugetlb_blocks, 1u);
        break;
      case ConcurrentArena::Backing::kTransparentHugePage:
        EXPECT_NE(c.mode, ConcurrentArena::HugepageMode::kNever);
        EXPECT_GE(stats.thp_blocks, 1u);
        break;
      case ConcurrentArena::Backing::kPlain:
        EXPECT_GE(stats.plain_blocks, 1u);
        break;
      case ConcurrentArena::Backing::kNone:
        FAIL() << "a block was allocated but backing is none";
    }
    if (c.mode == ConcurrentArena::HugepageMode::kNever) {
      EXPECT_EQ(stats.backing, ConcurrentArena::Backing::kPlain);
      EXPECT_EQ(stats.hugetlb_blocks, 0u);
      EXPECT_EQ(stats.thp_blocks, 0u);
    }
    EXPECT_STRNE(ConcurrentArena::BackingName(stats.backing), "unknown");
  }
}

// --- Concurrent MemTable inserts ---

MemTableOptions ConcurrentMemTableOptions() {
  MemTableOptions options;
  options.concurrent_inserts = true;
  return options;
}

std::string FuzzKey(int t, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "k%02d_%06d", t, i);
  return buf;
}

// N threads insert disjoint keys with distinct sequence numbers, while a
// reader thread continuously checks the accounting invariants. Afterwards
// every entry must be present, the iteration order strictly sorted, and
// num_entries/ApproximateMemoryUsage consistent with what was inserted.
TEST(ConcurrentMemTable, MultiThreadedInsertFuzz) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(cmp, ConcurrentMemTableOptions());
  ASSERT_TRUE(mem.concurrent_inserts());

  constexpr int kPerThread = 5000;
  std::atomic<uint64_t> next_seq{1};
  std::atomic<bool> done{false};

  // Invariant checker: both counters must be monotone while writers run
  // (relaxed atomics, no tearing) and Get must never crash mid-insert.
  std::thread checker([&] {
    uint64_t last_entries = 0;
    size_t last_usage = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t entries = mem.num_entries();
      const size_t usage = mem.ApproximateMemoryUsage();
      EXPECT_GE(entries, last_entries);
      EXPECT_GE(usage, last_usage);
      last_entries = entries;
      last_usage = usage;
      std::string value;
      bool found = false;
      const std::string key = FuzzKey(0, 0);
      LookupKey lookup(key, kMaxSequenceNumber);
      mem.Get(lookup, &value, &found).IgnoreError();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const uint64_t seq =
            next_seq.fetch_add(1, std::memory_order_relaxed);
        if (i % 97 == 13) {
          const std::string key = FuzzKey(t, i);
          mem.Add(seq, ValueType::kDeletion, key, "");
        } else {
          const std::string key = FuzzKey(t, i);
          const std::string val =
              "v" + std::to_string(t) + "_" + std::to_string(i);
          mem.Add(seq, ValueType::kValue, key, val);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  checker.join();

  EXPECT_EQ(mem.num_entries(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // Every key resolves to its value (or tombstone) at the latest view.
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      std::string value;
      bool found = false;
      const std::string key = FuzzKey(t, i);
      LookupKey lookup(key, kMaxSequenceNumber);
      Status s = mem.Get(lookup, &value, &found);
      ASSERT_TRUE(found) << "missing " << FuzzKey(t, i);
      if (i % 97 == 13) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(value, "v" + std::to_string(t) + "_" + std::to_string(i));
      }
    }
  }

  // Iteration: strictly sorted internal keys, exactly N entries.
  auto iter = mem.NewIterator();
  uint64_t count = 0;
  std::string prev_user_key;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    const std::string user_key(parsed.user_key.data(),
                               parsed.user_key.size());
    if (count > 0) {
      EXPECT_LT(prev_user_key, user_key);  // Disjoint keys: strict order.
    }
    prev_user_key = user_key;
    count++;
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(mem.ApproximateMemoryUsage(), count * 16);
}

// --- DB-level parallel write-group application ---

DbOptions ConcurrentDbOptions(Env* env) {
  DbOptions options;
  options.env = env;
  options.allow_concurrent_memtable_write = true;
  return options;
}

TEST(ConcurrentWritePath, ParallelGroupsApplyEveryBatch) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ConcurrentDbOptions(env.get()), "/db", &db).ok());

  constexpr int kPerThread = 400;
  // Group formation is timing-dependent (a group only forms when writers
  // queue behind a leader), so on a loaded machine one round of writes may
  // serialize entirely. Repeat the round — idempotent: same keys, same
  // values — until a multi-member group has gone down the parallel path.
  uint64_t rounds = 0;
  for (int attempt = 0; attempt < 50; attempt++) {
    rounds++;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        WriteOptions wo;
        for (int i = 0; i < kPerThread; i++) {
          WriteBatch batch;
          const std::string key = FuzzKey(t, i);
          const std::string val = "v" + std::to_string(t * kPerThread + i);
          batch.Put(key, val);
          const std::string shared_key = "shared_" + FuzzKey(t, i);
          batch.Put(shared_key, "s");
          ASSERT_TRUE(db->Write(wo, batch).ok());
        }
      });
    }
    for (auto& th : threads) th.join();
    if (db->GetStats().memtable_parallel_groups > 0) break;
  }

  ReadOptions ro;
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      const std::string key = FuzzKey(t, i);
      ASSERT_TRUE(db->Get(ro, key, &value).ok()) << "missing " << key;
      EXPECT_EQ(value, "v" + std::to_string(t * kPerThread + i));
      const std::string shared_key = "shared_" + FuzzKey(t, i);
      ASSERT_TRUE(db->Get(ro, shared_key, &value).ok());
    }
  }

  const DbStats stats = db->GetStats();
  EXPECT_EQ(stats.writes, rounds * kThreads * kPerThread);
  EXPECT_GT(stats.memtable_parallel_groups, 0u);
  // Every parallel group has at least two member batches by construction.
  EXPECT_GE(stats.memtable_parallel_batches,
            2 * stats.memtable_parallel_groups);
  EXPECT_NE(stats.arena_backing, "none");
}

// Sequence numbers assigned across parallel groups must stay contiguous
// and per-batch atomic: a snapshot taken at any moment sees either all
// ops of a batch or none.
TEST(ConcurrentWritePath, BatchesStayAtomicUnderSnapshots) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ConcurrentDbOptions(env.get()), "/db", &db).ok());

  constexpr int kSlots = 4;
  constexpr int kGenerations = 300;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    ReadOptions ro;
    while (!stop.load(std::memory_order_acquire)) {
      const Snapshot* snap = db->GetSnapshot();
      ReadOptions snap_ro;
      snap_ro.snapshot = snap;
      std::string first;
      if (db->Get(snap_ro, "slot_0", &first).ok()) {
        for (int s = 1; s < kSlots; s++) {
          std::string v;
          const std::string key = "slot_" + std::to_string(s);
          ASSERT_TRUE(db->Get(snap_ro, key, &v).ok());
          ASSERT_EQ(v, first) << "torn batch at slot " << s;
        }
      }
      db->ReleaseSnapshot(snap);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; t++) {
    writers.emplace_back([&, t] {
      WriteOptions wo;
      for (int g = 0; g < kGenerations; g++) {
        WriteBatch batch;
        const std::string gen =
            "g" + std::to_string(t) + "_" + std::to_string(g);
        for (int s = 0; s < kSlots; s++) {
          const std::string key = "slot_" + std::to_string(s);
          batch.Put(key, gen);
        }
        ASSERT_TRUE(db->Write(wo, batch).ok());
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Final state: one complete generation.
  ReadOptions ro;
  std::string first;
  ASSERT_TRUE(db->Get(ro, "slot_0", &first).ok());
  for (int s = 1; s < kSlots; s++) {
    std::string v;
    const std::string key = "slot_" + std::to_string(s);
    ASSERT_TRUE(db->Get(ro, key, &v).ok());
    EXPECT_EQ(v, first);
  }
}

// --- Flushed-SST byte identity ---

std::string ReadWholeFile(Env* env, const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(env->NewRandomAccessFile(path, &file).ok()) << path;
  uint64_t size = 0;
  EXPECT_TRUE(env->GetFileSize(path, &size).ok());
  std::string contents(size, '\0');
  Slice result;
  EXPECT_TRUE(file->Read(0, size, &result, contents.data()).ok());
  return std::string(result.data(), result.size());
}

// The same single-threaded op sequence, flushed explicitly, must produce
// byte-identical SSTs whether the memtable was serial or concurrent: the
// flush path only sees the skiplist's sorted iteration, which both
// regimes define identically. (Explicit Flush with a large buffer, so
// flush boundaries cannot depend on the two allocators' different
// accounting granularities.)
TEST(ConcurrentWritePath, FlushedSstBytesIdenticalOnVsOff) {
  auto run = [](bool concurrent, std::unique_ptr<Env>* env_out) {
    *env_out = NewMemEnv();
    DbOptions options;
    options.env = env_out->get();
    options.allow_concurrent_memtable_write = concurrent;
    options.buffer_size_bytes = 64 << 20;  // Never auto-flush.
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    WriteOptions wo;
    for (int i = 0; i < 3000; i++) {
      const std::string key = FuzzKey(i % 7, i);
      if (i % 31 == 5) {
        ASSERT_TRUE(db->Delete(wo, key).ok());
      } else {
        const std::string val = "value_" + std::to_string(i);
        ASSERT_TRUE(db->Put(wo, key, val).ok());
      }
    }
    ASSERT_TRUE(db->Flush().ok());
  };

  std::unique_ptr<Env> env_off;
  std::unique_ptr<Env> env_on;
  run(false, &env_off);
  run(true, &env_on);

  auto tables = [](Env* env) {
    std::vector<std::string> children;
    EXPECT_TRUE(env->GetChildren("/db", &children).ok());
    std::vector<std::string> result;
    for (const std::string& name : children) {
      if (name.find(".sst") != std::string::npos) result.push_back(name);
    }
    std::sort(result.begin(), result.end());
    return result;
  };

  const std::vector<std::string> off_tables = tables(env_off.get());
  const std::vector<std::string> on_tables = tables(env_on.get());
  ASSERT_FALSE(off_tables.empty());
  ASSERT_EQ(off_tables, on_tables);
  for (size_t i = 0; i < off_tables.size(); i++) {
    const std::string off_bytes =
        ReadWholeFile(env_off.get(), "/db/" + off_tables[i]);
    const std::string on_bytes =
        ReadWholeFile(env_on.get(), "/db/" + on_tables[i]);
    ASSERT_EQ(off_bytes.size(), on_bytes.size()) << off_tables[i];
    ASSERT_EQ(off_bytes, on_bytes) << off_tables[i];
  }
}

// DB-level backing surface: forcing plain pages must be visible in
// DbStats::arena_backing, and the block counters must account for every
// block. (Forced via the same env override CI's fallback leg uses.)
TEST(ConcurrentWritePath, ForcedPlainBackingIsReported) {
  ScopedEnvVar guard("MONKEYDB_ARENA_HUGEPAGE", "never");
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ConcurrentDbOptions(env.get()), "/db", &db).ok());
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "a", "1").ok());
  const DbStats stats = db->GetStats();
  EXPECT_EQ(stats.arena_backing, "plain");
  EXPECT_EQ(stats.arena_hugetlb_blocks, 0u);
  EXPECT_EQ(stats.arena_thp_blocks, 0u);
  EXPECT_GE(stats.arena_plain_blocks, 1u);
}

// Recovery: entries written through parallel groups replay from the WAL
// (one record per group) into a fresh memtable on reopen.
TEST(ConcurrentWritePath, RecoversFromWalAfterParallelWrites) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(ConcurrentDbOptions(env.get()), "/db", &db).ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&, t] {
        WriteOptions wo;
        for (int i = 0; i < 200; i++) {
          const std::string key = FuzzKey(t, i);
          const std::string val = "r" + std::to_string(i);
          ASSERT_TRUE(
              db->Put(wo, key, val).ok());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ConcurrentDbOptions(env.get()), "/db", &db).ok());
  ReadOptions ro;
  std::string value;
  for (int t = 0; t < 4; t++) {
    for (int i = 0; i < 200; i++) {
      const std::string key = FuzzKey(t, i);
      const std::string val = FuzzKey(t, i);
      ASSERT_TRUE(db->Get(ro, key, &value).ok())
          << "lost after reopen: " << val;
      EXPECT_EQ(value, "r" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace monkeydb
