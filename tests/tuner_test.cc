// Tuner tests: the divide-and-conquer search against exhaustive search
// across workload mixes, SLA handling, and the memory-allocation rule.

#include "monkey/tuner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace monkeydb {
namespace monkey {
namespace {

Environment DefaultEnv() {
  Environment env;
  env.num_entries = 1e8;
  env.entry_size_bits = 128 * 8;
  env.page_bits = 4096.0 * 8;
  env.total_memory_bits = 1e8 * 12.0;  // ~12 bits/entry to divide.
  env.read_seconds = 10e-3;
  env.write_read_cost_ratio = 1.0;
  return env;
}

Workload MixedWorkload(double lookups) {
  Workload w;
  w.zero_result_lookups = lookups;
  w.updates = 1.0 - lookups;
  return w;
}

// Appendix D validation: the O(log^2) search must find (essentially) the
// same optimum as brute force over all integer size ratios.
class TunerSweep : public ::testing::TestWithParam<double> {};

TEST_P(TunerSweep, DivideAndConquerMatchesExhaustive) {
  const Environment env = DefaultEnv();
  const Workload w = MixedWorkload(GetParam());
  const Tuning fast = AutotuneSizeRatioAndPolicy(env, w);
  const Tuning exhaustive = ExhaustiveSearch(env, w);
  ASSERT_TRUE(fast.feasible);
  ASSERT_TRUE(exhaustive.feasible);
  // The linearized objective is close to unimodal but not exactly, so allow
  // the fast search to land within 10% of the true optimum.
  EXPECT_LE(fast.avg_op_cost, exhaustive.avg_op_cost * 1.10)
      << "lookup share " << GetParam() << ": fast (policy "
      << static_cast<int>(fast.policy) << ", T=" << fast.size_ratio
      << ") vs exhaustive (policy " << static_cast<int>(exhaustive.policy)
      << ", T=" << exhaustive.size_ratio << ")";
}

INSTANTIATE_TEST_SUITE_P(LookupShares, TunerSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99));

TEST(Tuner, WorkloadExtremesPickTheRightPolicy) {
  const Environment env = DefaultEnv();
  // Write-heavy -> tiering (or leveling at T=2, the shared point).
  const Tuning writes = AutotuneSizeRatioAndPolicy(env, MixedWorkload(0.02));
  // Read-heavy -> leveling with a large T.
  const Tuning reads = AutotuneSizeRatioAndPolicy(env, MixedWorkload(0.98));

  EXPECT_TRUE(writes.policy == MergePolicy::kTiering ||
              writes.size_ratio <= 3.0);
  EXPECT_EQ(reads.policy, MergePolicy::kLeveling);
  EXPECT_GT(reads.size_ratio, writes.policy == MergePolicy::kLeveling
                                  ? writes.size_ratio
                                  : 2.0);
  // Read-optimized tuning has cheaper lookups; write-optimized cheaper
  // updates.
  EXPECT_LT(reads.lookup_cost, writes.lookup_cost + 1e-12);
  EXPECT_LT(writes.update_cost, reads.update_cost + 1e-12);
}

TEST(Tuner, SlaBoundsRestrictTheSearch) {
  const Environment env = DefaultEnv();
  const Workload w = MixedWorkload(0.05);  // Write-heavy.
  const Tuning unconstrained = AutotuneSizeRatioAndPolicy(env, w);

  // Impose a lookup-cost ceiling below the unconstrained optimum's R.
  SlaBounds sla;
  sla.max_lookup_cost = unconstrained.lookup_cost * 0.5;
  const Tuning bounded = AutotuneSizeRatioAndPolicy(env, w, sla);
  if (bounded.feasible) {
    EXPECT_LE(bounded.lookup_cost, sla.max_lookup_cost + 1e-9);
    // Constrained optimum can't beat the unconstrained one.
    EXPECT_GE(bounded.avg_op_cost, unconstrained.avg_op_cost - 1e-9);
  }

  // An impossible SLA is reported as infeasible.
  SlaBounds impossible;
  impossible.max_lookup_cost = 1e-12;
  impossible.max_update_cost = 1e-12;
  const Tuning infeasible = ExhaustiveSearch(env, w, impossible);
  EXPECT_FALSE(infeasible.feasible);
}

TEST(Tuner, MemoryAllocationSumsToBudget) {
  const Environment env = DefaultEnv();
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering}) {
    for (double t : {2.0, 4.0, 10.0}) {
      const MemorySplit split = AllocateMainMemory(env, policy, t);
      EXPECT_NEAR(split.buffer_bits + split.filter_bits,
                  env.total_memory_bits, 1.0)
          << "T=" << t;
      EXPECT_GE(split.buffer_bits, env.page_bits);  // At least one page.
      EXPECT_GE(split.filter_bits, 0.0);
    }
  }
}

TEST(Tuner, TinyMemoryAllGoesToBuffer) {
  Environment env = DefaultEnv();
  env.total_memory_bits = env.page_bits / 2;
  const MemorySplit split =
      AllocateMainMemory(env, MergePolicy::kLeveling, 4.0);
  EXPECT_DOUBLE_EQ(split.filter_bits, 0.0);
  EXPECT_DOUBLE_EQ(split.buffer_bits, env.total_memory_bits);
}

TEST(Tuner, HugeMemoryCapsFiltersAtDiminishingReturns) {
  // Step 3: once R is driven below the target, extra memory should go to
  // the buffer, not the filters.
  Environment env = DefaultEnv();
  env.total_memory_bits = env.num_entries * 1000.0;  // Absurdly large.
  const MemorySplit split =
      AllocateMainMemory(env, MergePolicy::kLeveling, 4.0);
  // Filters bounded by the R-target cap (~tens of bits per entry).
  EXPECT_LT(split.filter_bits, env.num_entries * 50.0);
  EXPECT_GT(split.buffer_bits, split.filter_bits);

  const DesignPoint d =
      MakeDesignPoint(env, MergePolicy::kLeveling, 4.0, split.buffer_bits,
                      split.filter_bits);
  EXPECT_LE(ZeroResultLookupCost(d), 1e-3);  // Essentially free lookups.
}

TEST(Tuner, FlashChangesTheBalance) {
  // On flash, phi = 2 doubles the write penalty, so a write-heavy workload
  // should push the tuning at least as far toward write-optimization.
  Environment disk = DefaultEnv();
  Environment flash = DefaultEnv();
  flash.read_seconds = 100e-6;
  flash.write_read_cost_ratio = 2.0;

  const Workload w = MixedWorkload(0.3);
  const Tuning disk_tuning = AutotuneSizeRatioAndPolicy(disk, w);
  const Tuning flash_tuning = AutotuneSizeRatioAndPolicy(flash, w);
  // Both valid tunings; flash throughput is far higher in absolute terms.
  EXPECT_GT(flash_tuning.throughput, disk_tuning.throughput * 10);
}

TEST(Tuner, RangeHeavyWorkloadPrefersFewRuns) {
  // Range lookups pay one seek per run (Eq. 11), so a scan-heavy workload
  // should avoid run-heavy designs (tiering with large T).
  const Environment env = DefaultEnv();
  Workload scans;
  scans.range_lookups = 0.8;
  scans.range_selectivity = 1e-6;
  scans.updates = 0.2;
  const Tuning tuning = AutotuneSizeRatioAndPolicy(env, scans);
  ASSERT_TRUE(tuning.feasible);
  const DesignPoint d = MakeDesignPoint(env, tuning.policy,
                                        tuning.size_ratio, tuning.buffer_bits,
                                        tuning.filter_bits);
  // The chosen design's run count must be modest: far below a
  // write-optimized tiering tree's.
  const DesignPoint tiered = MakeDesignPoint(
      env, MergePolicy::kTiering, 8.0, tuning.buffer_bits,
      tuning.filter_bits);
  EXPECT_LT(MaxRuns(d), MaxRuns(tiered));
}

TEST(Tuner, NonZeroLookupWorkloadSupported) {
  const Environment env = DefaultEnv();
  Workload w;
  w.nonzero_result_lookups = 0.6;
  w.updates = 0.4;
  const Tuning tuning = AutotuneSizeRatioAndPolicy(env, w);
  ASSERT_TRUE(tuning.feasible);
  // V >= 1 always, so theta >= 0.6.
  EXPECT_GE(tuning.avg_op_cost, 0.6 - 1e-9);
  const Tuning reference = ExhaustiveSearch(env, w);
  EXPECT_LE(tuning.avg_op_cost, reference.avg_op_cost * 1.10);
}

TEST(Tuner, ThroughputPredictionConsistent) {
  const Environment env = DefaultEnv();
  const Workload w = MixedWorkload(0.5);
  const Tuning tuning = AutotuneSizeRatioAndPolicy(env, w);
  const DesignPoint d = MakeDesignPoint(env, tuning.policy,
                                        tuning.size_ratio, tuning.buffer_bits,
                                        tuning.filter_bits);
  EXPECT_NEAR(tuning.avg_op_cost, AverageOperationCost(d, w), 1e-9);
  EXPECT_NEAR(tuning.throughput,
              Throughput(d, w, env.read_seconds), 1e-6);
}

}  // namespace
}  // namespace monkey
}  // namespace monkeydb
