// Stress tests for the decoupled read path and the background flush
// pipeline: readers and iterators must see consistent snapshots while the
// worker churns the tree underneath them, acked writes must never be lost
// (including across an abrupt close), and drain/shutdown must be clean.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

DbOptions BackgroundOptions(Env* env) {
  DbOptions options;
  options.env = env;
  options.buffer_size_bytes = 8 << 10;
  options.background_compaction = true;
  options.max_immutable_memtables = 2;
  return options;
}

// A writer updates two keys atomically in a WriteBatch while readers check,
// through snapshots and through iterators, that they never observe the keys
// at different generations (no torn multi-key writes, no inconsistent
// views mid-compaction).
TEST(ConcurrentStress, AtomicBatchesStayConsistentUnderChurn) {
  auto env = NewMemEnv();
  DbOptions options = BackgroundOptions(env.get());
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  {
    WriteBatch batch;
    batch.Put("pair_a", "gen00000000");
    batch.Put("pair_b", "gen00000000");
    ASSERT_TRUE(db->Write(wo, batch).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread snapshot_reader([&] {
    std::string a, b;
    while (!stop.load(std::memory_order_relaxed)) {
      const Snapshot* snap = db->GetSnapshot();
      ReadOptions ro;
      ro.snapshot = snap;
      const bool ok_a = db->Get(ro, "pair_a", &a).ok();
      const bool ok_b = db->Get(ro, "pair_b", &b).ok();
      if (!ok_a || !ok_b || a != b) torn.fetch_add(1);
      db->ReleaseSnapshot(snap);
    }
  });

  std::thread iterator_reader([&] {
    std::string a, b;
    while (!stop.load(std::memory_order_relaxed)) {
      auto iter = db->NewIterator(ReadOptions());
      iter->Seek("pair_a");
      if (!iter->Valid() || iter->key() != Slice("pair_a")) {
        torn.fetch_add(1);
        continue;
      }
      a.assign(iter->value().data(), iter->value().size());
      iter->Seek("pair_b");
      if (!iter->Valid() || iter->key() != Slice("pair_b")) {
        torn.fetch_add(1);
        continue;
      }
      b.assign(iter->value().data(), iter->value().size());
      if (a != b) torn.fetch_add(1);
    }
  });

  // Churn filler keys to force memtable switches and background merges
  // while the pair keeps changing generation.
  char value[16];
  for (int gen = 1; gen <= 400; gen++) {
    snprintf(value, sizeof(value), "gen%08d", gen);
    WriteBatch batch;
    batch.Put("pair_a", value);
    batch.Put("pair_b", value);
    ASSERT_TRUE(db->Write(wo, batch).ok());
    for (int i = 0; i < 20; i++) {
      const std::string key =
          "fill" + std::to_string(gen) + "_" + std::to_string(i);
      const std::string payload(64, 'f');
      ASSERT_TRUE(db->Put(wo, key, payload).ok());
    }
  }
  stop.store(true);
  snapshot_reader.join();
  iterator_reader.join();
  EXPECT_EQ(torn.load(), 0);
}

// Every acked write must be readable after the writers finish, and the
// accounting must balance once the pipeline is drained.
TEST(ConcurrentStress, NoLostAckedWritesUnderBackgroundFlushes) {
  auto env = NewMemEnv();
  DbOptions options = BackgroundOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < kPerThread; i++) {
        const std::string key =
            "w" + std::to_string(t) + "_" + std::to_string(i);
        const std::string val = "v" + std::to_string(i);
        if (!db->Put(wo, key, val).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db->Flush().ok());  // Drain the immutable-memtable queue.

  ReadOptions ro;
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 41) {
      const std::string key =
          "w" + std::to_string(t) + "_" + std::to_string(i);
      ASSERT_TRUE(db->Get(ro, key, &value).ok()) << key;
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
  const DbStats stats = db->GetStats();
  EXPECT_EQ(stats.memtable_entries, 0u);
  EXPECT_EQ(stats.total_disk_entries,
            static_cast<uint64_t>(kThreads * kPerThread));
}

// Destroying the DB while the background worker is mid-flush must shut down
// cleanly, and every acked write must survive reopen (frozen memtables stay
// durable in their WALs).
TEST(ConcurrentStress, OpenCloseUnderLoadLosesNothing) {
  auto env = NewMemEnv();
  constexpr int kRounds = 3;
  constexpr int kPerRound = 2000;
  for (int round = 0; round < kRounds; round++) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/db", &db).ok());
    WriteOptions wo;
    for (int i = 0; i < kPerRound; i++) {
      const std::string key =
          "r" + std::to_string(round) + "_" + std::to_string(i);
      const std::string payload = std::string(40, 'a' + round);
      ASSERT_TRUE(db->Put(wo, key, payload).ok());
    }
    db.reset();  // No drain: the worker may be holding frozen memtables.
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/db", &db).ok());
  ReadOptions ro;
  std::string value;
  for (int round = 0; round < kRounds; round++) {
    for (int i = 0; i < kPerRound; i += 37) {
      const std::string key =
          "r" + std::to_string(round) + "_" + std::to_string(i);
      ASSERT_TRUE(db->Get(ro, key, &value).ok()) << key;
      EXPECT_EQ(value, std::string(40, 'a' + round));
    }
  }
}

// Flush drains the whole pipeline; CompactAll and Checkpoint quiesce the
// worker before restructuring or copying the tree.
TEST(ConcurrentStress, MaintenanceOpsDrainTheWorker) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/db", &db).ok());

  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->GetStats().memtable_entries, 0u);

  ASSERT_TRUE(db->CompactAll().ok());
  const DbStats stats = db->GetStats();
  EXPECT_EQ(stats.total_runs, 1u);
  EXPECT_EQ(stats.total_disk_entries, 5000u);

  // Checkpoint under concurrent writes: the copy must open consistently.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    WriteOptions wo2;
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string key = "extra" + std::to_string(i++);
      db->Put(wo2, key, "x").ok();
    }
  });
  ASSERT_TRUE(db->Checkpoint("/ckpt").ok());
  stop.store(true);
  writer.join();

  DbOptions copy_options;
  copy_options.env = env.get();
  std::unique_ptr<DB> copy;
  ASSERT_TRUE(DB::Open(copy_options, "/ckpt", &copy).ok());
  ReadOptions ro;
  std::string value;
  ASSERT_TRUE(copy->Get(ro, "k100", &value).ok());
  EXPECT_EQ(value, "v");
}

}  // namespace
}  // namespace monkeydb
