// Observability: histogram bucketing/percentiles, the sharded registry
// under concurrent recording (also exercised by the TSan CI job), reset
// semantics, and the DumpMetrics()/DumpStats()/ResetStats() exposition
// surface.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace monkeydb {
namespace {

TEST(Histogram, SmallValuesAreExact) {
  // Values 0..3 get their own buckets, so tiny latencies do not smear.
  for (uint64_t v = 0; v < 4; v++) {
    EXPECT_EQ(Histogram::BucketFor(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(Histogram, BucketBoundsBracketEveryValue) {
  for (uint64_t v : {uint64_t{5}, uint64_t{100}, uint64_t{4096},
                     uint64_t{123456789}, uint64_t{1} << 40}) {
    const int b = Histogram::BucketFor(v);
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << v;
    EXPECT_GT(Histogram::BucketLowerBound(b + 1), v) << v;
    // The documented worst-case relative error: a bucket is 1/4 of its
    // lower bound wide.
    EXPECT_LE(Histogram::BucketLowerBound(b + 1) -
                  Histogram::BucketLowerBound(b),
              Histogram::BucketLowerBound(b) / 4 + 1)
        << v;
  }
}

TEST(Histogram, PercentilesWithinBucketError) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  HistogramMerger merger;
  merger.Add(h);
  const HistogramData d = merger.Snapshot();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_EQ(d.sum, 500500u);
  EXPECT_EQ(d.max, 1000u);
  EXPECT_NEAR(d.avg, 500.5, 0.001);
  // A uniform 1..1000 distribution: each percentile must land within the
  // histogram's 25% bucket error of the exact answer.
  EXPECT_NEAR(d.p50, 500.0, 150.0);
  EXPECT_NEAR(d.p90, 900.0, 250.0);
  EXPECT_NEAR(d.p99, 990.0, 260.0);
  EXPECT_LE(d.p999, static_cast<double>(d.max) * 1.26);
}

TEST(Histogram, MergeAcrossShards) {
  // Two shards each holding half the samples must snapshot like one
  // histogram holding all of them.
  Histogram a, b;
  for (uint64_t v = 1; v <= 500; v++) a.Record(v);
  for (uint64_t v = 501; v <= 1000; v++) b.Record(v);
  HistogramMerger merger;
  merger.Add(a);
  merger.Add(b);
  const HistogramData d = merger.Snapshot();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_EQ(d.sum, 500500u);
  EXPECT_EQ(d.max, 1000u);
}

TEST(MetricsRegistry, ConcurrentRecordingMergesExactly) {
  // Hammer one histogram and one tick from many threads; the snapshot must
  // account for every sample (the per-thread shards make the recording
  // race-free — TSan verifies that claim in CI).
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; i++) {
        registry.Record(Hist::kGetLatency,
                        static_cast<uint64_t>(i % 128));
        registry.Tick1(Tick::kListenerCallbacks);
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t expected_sum = 0;
  for (int i = 0; i < kPerThread; i++) expected_sum += i % 128;
  expected_sum *= kThreads;

  const HistogramData d = registry.SnapshotHistogram(Hist::kGetLatency);
  EXPECT_EQ(d.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(d.sum, expected_sum);
  EXPECT_EQ(d.max, 127u);
  EXPECT_EQ(registry.TickTotal(Tick::kListenerCallbacks),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Untouched metrics stay empty.
  EXPECT_EQ(registry.SnapshotHistogram(Hist::kFlushLatency).count, 0u);
  EXPECT_EQ(registry.TickTotal(Tick::kListenerFailures), 0u);
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.Record(Hist::kWriteLatency, 42);
  registry.Tick1(Tick::kLoggerRotations);
  ASSERT_EQ(registry.SnapshotHistogram(Hist::kWriteLatency).count, 1u);
  registry.Reset();
  const HistogramData d = registry.SnapshotHistogram(Hist::kWriteLatency);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_EQ(d.max, 0u);
  EXPECT_EQ(registry.TickTotal(Tick::kLoggerRotations), 0u);
}

TEST(MetricsRegistry, StopWatchRecordsOnlyWithRegistry) {
  // The null-registry form is the enable_metrics=false fast path; it must
  // be safe and record nothing anywhere.
  { StopWatch watch(nullptr, Hist::kGetLatency); }
  MetricsRegistry registry;
  { StopWatch watch(&registry, Hist::kGetLatency); }
  EXPECT_EQ(registry.SnapshotHistogram(Hist::kGetLatency).count, 1u);
}

// --- DB-level exposition ---------------------------------------------------

class MetricsDbTest : public ::testing::Test {
 protected:
  MetricsDbTest() : env_(NewMemEnv()) {}

  DbOptions MakeOptions(bool enable_metrics) {
    DbOptions options;
    options.env = env_.get();
    options.buffer_size_bytes = 16 << 10;
    options.expected_entries = kNumKeys;
    options.enable_metrics = enable_metrics;
    return options;
  }

  // Fills the DB and runs enough zero-result lookups that every level
  // accumulates filter-probe traffic.
  void FillAndProbe(DB* db) {
    WriteOptions wo;
    const std::string value(64, 'v');
    for (int i = 0; i < kNumKeys; i++) {
      const std::string key = Key(i);
      ASSERT_TRUE(db->Put(wo, key, value).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ReadOptions ro;
    std::string out;
    for (int i = 0; i < 500; i++) {
      const std::string key = Key(i) + "x";
      EXPECT_TRUE(db->Get(ro, key, &out).IsNotFound());
    }
  }

  static std::string Key(int i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  static constexpr int kNumKeys = 3000;
  std::unique_ptr<Env> env_;
};

TEST_F(MetricsDbTest, MetricsDisabledByDefault) {
  std::unique_ptr<DB> db;
  DbOptions options;
  options.env = env_.get();
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  EXPECT_EQ(db->metrics(), nullptr);
}

TEST_F(MetricsDbTest, DumpMetricsPrometheusExposesFprGauges) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(true), "/db", &db).ok());
  ASSERT_NE(db->metrics(), nullptr);
  FillAndProbe(db.get());

  const std::string text = db->DumpMetrics(DB::MetricsFormat::kPrometheus);
  // Lifetime counters and the paper-specific predicted-vs-measured gauges.
  EXPECT_NE(text.find("monkeydb_gets_total 500"), std::string::npos) << text;
  EXPECT_NE(text.find("monkey_predicted_fpr{level=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("monkey_measured_fpr{level=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("monkey_predicted_lookup_cost"), std::string::npos);
  EXPECT_NE(text.find("monkey_measured_lookup_cost"), std::string::npos);
  // Histograms only exist with metrics on; Get latency saw traffic.
  EXPECT_NE(text.find("get_latency_us_count 500"), std::string::npos);
  // Every metric is declared before it is sampled.
  EXPECT_NE(text.find("# TYPE monkeydb_gets_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE monkey_predicted_fpr gauge"),
            std::string::npos);
}

TEST_F(MetricsDbTest, DumpMetricsPrometheusWorksWithMetricsOff) {
  // Counters and FPR gauges come from the always-on DB::Counters; only the
  // histogram summaries require enable_metrics.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(false), "/db", &db).ok());
  FillAndProbe(db.get());
  const std::string text = db->DumpMetrics(DB::MetricsFormat::kPrometheus);
  EXPECT_NE(text.find("monkeydb_gets_total 500"), std::string::npos);
  EXPECT_NE(text.find("monkey_predicted_fpr{level=\"1\"}"),
            std::string::npos);
  EXPECT_EQ(text.find("get_latency_us_count"), std::string::npos);
}

TEST_F(MetricsDbTest, DumpMetricsJsonIsWellFormed) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(true), "/db", &db).ok());
  FillAndProbe(db.get());

  const std::string json = db->DumpMetrics(DB::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"fpr\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"gets\":500"), std::string::npos) << json;
  // Braces balance and nothing after the root object closes.
  int depth = 0;
  size_t close_at = std::string::npos;
  for (size_t i = 0; i < json.size(); i++) {
    if (json[i] == '{') depth++;
    if (json[i] == '}') {
      depth--;
      if (depth == 0) close_at = i;
    }
    EXPECT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.find_first_not_of(" \n", close_at + 1), std::string::npos);
}

TEST_F(MetricsDbTest, DumpStatsReportsWritePathCounters) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(false), "/db", &db).ok());
  FillAndProbe(db.get());
  const std::string text = db->DumpStats();
  // The PR 2/3 write-path machinery GetStats never used to surface.
  EXPECT_NE(text.find("reads: gets 500 (not-found 500)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("writes: "), std::string::npos);
  EXPECT_NE(text.find("wal: "), std::string::npos);
  EXPECT_NE(text.find("backpressure: "), std::string::npos);
  EXPECT_NE(text.find("level 1 probes:"), std::string::npos);
}

TEST_F(MetricsDbTest, ResetStatsZeroesCountersAndHistograms) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(true), "/db", &db).ok());
  FillAndProbe(db.get());

  DbStats stats = db->GetStats();
  ASSERT_EQ(stats.gets, 500u);
  ASSERT_GT(stats.writes, 0u);
  ASSERT_GT(db->metrics()->SnapshotHistogram(Hist::kGetLatency).count, 0u);

  db->ResetStats();
  stats = db->GetStats();
  EXPECT_EQ(stats.gets, 0u);
  EXPECT_EQ(stats.gets_not_found, 0u);
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.wal_appends, 0u);
  EXPECT_EQ(stats.false_positives, 0u);
  EXPECT_EQ(db->metrics()->SnapshotHistogram(Hist::kGetLatency).count, 0u);
  // Tree shape is state, not a counter: it survives the reset.
  EXPECT_GT(stats.total_disk_entries, 0u);

  // Per-phase measurement: deltas after the reset only see new traffic.
  ReadOptions ro;
  std::string out;
  for (int i = 0; i < 25; i++) {
    const std::string key = Key(i) + "x";
    EXPECT_TRUE(db->Get(ro, key, &out).IsNotFound());
  }
  stats = db->GetStats();
  EXPECT_EQ(stats.gets, 25u);
  EXPECT_EQ(stats.gets_not_found, 25u);
}

}  // namespace
}  // namespace monkeydb
