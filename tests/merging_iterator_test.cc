// MergingIterator tests against a reference sorted union.

#include "lsm/merging_iterator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace monkeydb {
namespace {

// A trivial in-memory iterator over pre-sorted internal keys.
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(
      std::vector<std::pair<std::string, std::string>> entries)
      : entries_(std::move(entries)), pos_(entries_.size()) {}

  bool Valid() const override { return pos_ < entries_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void SeekToLast() override {
    pos_ = entries_.empty() ? 0 : entries_.size() - 1;
    if (entries_.empty()) pos_ = entries_.size();
  }
  void Seek(const Slice& target) override {
    pos_ = 0;
    InternalKeyComparator cmp(BytewiseComparator());
    while (pos_ < entries_.size() &&
           cmp.Compare(Slice(entries_[pos_].first), target) < 0) {
      pos_++;
    }
  }
  void Next() override { pos_++; }
  void Prev() override {
    if (pos_ == 0) {
      pos_ = entries_.size();
    } else {
      pos_--;
    }
  }
  Slice key() const override { return Slice(entries_[pos_].first); }
  Slice value() const override { return Slice(entries_[pos_].second); }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_;
};

std::string IKey(const std::string& user_key, uint64_t seq) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, ValueType::kValue);
  return k;
}

class MergingIteratorTest : public ::testing::Test {
 protected:
  MergingIteratorTest() : comparator_(BytewiseComparator()) {}
  InternalKeyComparator comparator_;
};

TEST_F(MergingIteratorTest, MergesSortedChildren) {
  Random rng(3);
  std::vector<std::string> all_keys;
  std::vector<std::unique_ptr<Iterator>> children;
  for (int child = 0; child < 5; child++) {
    std::vector<std::pair<std::string, std::string>> entries;
    for (int i = 0; i < 200; i++) {
      const std::string ik =
          IKey("k" + std::to_string(rng.Uniform(100000)), rng.Next() >> 10);
      entries.push_back({ik, "v"});
    }
    InternalKeyComparator cmp(BytewiseComparator());
    std::sort(entries.begin(), entries.end(),
              [&](const auto& a, const auto& b) {
                return cmp.Compare(Slice(a.first), Slice(b.first)) < 0;
              });
    for (const auto& [k, v] : entries) all_keys.push_back(k);
    children.push_back(std::make_unique<VectorIterator>(std::move(entries)));
  }
  std::sort(all_keys.begin(), all_keys.end(),
            [&](const std::string& a, const std::string& b) {
              return comparator_.Compare(Slice(a), Slice(b)) < 0;
            });

  auto merged = NewMergingIterator(&comparator_, std::move(children));
  size_t i = 0;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next(), i++) {
    ASSERT_LT(i, all_keys.size());
    EXPECT_EQ(merged->key().ToString(), all_keys[i]);
  }
  EXPECT_EQ(i, all_keys.size());
}

TEST_F(MergingIteratorTest, SeekPositionsAcrossChildren) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IKey("a", 1), "1"}, {IKey("e", 1), "2"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IKey("c", 1), "3"}, {IKey("g", 1), "4"}}));

  auto merged = NewMergingIterator(&comparator_, std::move(children));
  const std::string ikey = IKey("b", kMaxSequenceNumber);
  merged->Seek(ikey);
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "c");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "e");
}

TEST_F(MergingIteratorTest, EmptyChildrenYieldEmptyIterator) {
  auto merged = NewMergingIterator(&comparator_, {});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{}));
  auto merged2 = NewMergingIterator(&comparator_, std::move(children));
  merged2->SeekToFirst();
  EXPECT_FALSE(merged2->Valid());
}

TEST_F(MergingIteratorTest, SingleChildPassesThrough) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IKey("a", 1), "1"}}));
  auto merged = NewMergingIterator(&comparator_, std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "1");
}

TEST_F(MergingIteratorTest, NewerVersionComesFirst) {
  // Same user key in two children with different sequences: the newer
  // (higher seq) must be yielded first.
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IKey("k", 5), "old"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IKey("k", 9), "new"}}));
  auto merged = NewMergingIterator(&comparator_, std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

}  // namespace
}  // namespace monkeydb
