// Tests for ApproximateSize, Checkpoint, and the WorkloadMonitor
// (Appendix A's adaptive-tuning seed).

#include <gtest/gtest.h>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "monkey/workload_monitor.h"

namespace monkeydb {
namespace {

class AdaptiveFeaturesTest : public ::testing::Test {
 protected:
  AdaptiveFeaturesTest() : env_(NewMemEnv()) {}

  DbOptions MakeOptions() {
    DbOptions options;
    options.env = env_.get();
    options.buffer_size_bytes = 16 << 10;
    options.fpr_policy = monkey::NewMonkeyFprPolicy();
    return options;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(AdaptiveFeaturesTest, ApproximateSizeScalesWithRange) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 20000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    const std::string payload = std::string(64, 'v');
    ASSERT_TRUE(db->Put(wo, key, payload).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  const uint64_t all = db->ApproximateSize("key000000", "key999999");
  const uint64_t half = db->ApproximateSize("key000000", "key010000");
  const uint64_t tiny = db->ApproximateSize("key005000", "key005100");
  const uint64_t empty = db->ApproximateSize("zzz", "zzzz");
  const uint64_t inverted = db->ApproximateSize("key9", "key0");

  EXPECT_GT(all, 20000u * 64u);  // At least the raw values.
  EXPECT_NEAR(static_cast<double>(half) / all, 0.5, 0.2);
  EXPECT_LT(tiny, half / 10);
  EXPECT_EQ(empty, 0u);
  EXPECT_EQ(inverted, 0u);
}

TEST_F(AdaptiveFeaturesTest, CheckpointOpensAsIndependentDb) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string val = "v" + std::to_string(i);
    ASSERT_TRUE(
        db->Put(wo, key, val)
            .ok());
  }
  ASSERT_TRUE(db->Flush().ok());  // Checkpoint captures flushed state.
  ASSERT_TRUE(db->Checkpoint("/backup").ok());

  // Mutate the original after the checkpoint.
  ASSERT_TRUE(db->Put(wo, "key100", "mutated").ok());
  ASSERT_TRUE(db->Delete(wo, "key200").ok());

  std::unique_ptr<DB> backup;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/backup", &backup).ok());
  std::string value;
  ASSERT_TRUE(backup->Get(ReadOptions(), "key100", &value).ok());
  EXPECT_EQ(value, "v100");  // Pre-mutation value.
  ASSERT_TRUE(backup->Get(ReadOptions(), "key200", &value).ok());
  EXPECT_EQ(value, "v200");  // Still present in the backup.
  // And the original still sees its own mutations.
  ASSERT_TRUE(db->Get(ReadOptions(), "key100", &value).ok());
  EXPECT_EQ(value, "mutated");
}

TEST_F(AdaptiveFeaturesTest, CheckpointIncludesValueLog) {
  DbOptions options = MakeOptions();
  options.value_separation_threshold = 100;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 300; i++) {
    const std::string key = "big" + std::to_string(i);
    const std::string payload = std::string(500, 'B');
    ASSERT_TRUE(db->Put(wo, key,
                        payload)
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Checkpoint("/backup2").ok());

  std::unique_ptr<DB> backup;
  ASSERT_TRUE(DB::Open(options, "/backup2", &backup).ok());
  std::string value;
  ASSERT_TRUE(backup->Get(ReadOptions(), "big42", &value).ok());
  EXPECT_EQ(value, std::string(500, 'B'));
}

TEST(WorkloadMonitor, TracksObservedMix) {
  monkey::WorkloadMonitor monitor;
  monitor.ObserveLookupsZeroResult(600);
  monitor.ObserveUpdates(300);
  monitor.ObserveLookupsNonZeroResult(50);
  monitor.ObserveRangeLookups(50, 1e-4);
  const monkey::Workload w = monitor.ObservedWorkload();
  EXPECT_NEAR(w.zero_result_lookups, 0.6, 1e-9);
  EXPECT_NEAR(w.updates, 0.3, 1e-9);
  EXPECT_NEAR(w.nonzero_result_lookups, 0.05, 1e-9);
  EXPECT_NEAR(w.range_lookups, 0.05, 1e-9);
  EXPECT_NEAR(w.range_selectivity, 1e-4, 1e-12);
}

TEST(WorkloadMonitor, DecayForgetsOldBehaviour) {
  monkey::WorkloadMonitor monitor(0.1);  // Aggressive decay.
  monitor.ObserveUpdates(1000);
  for (int window = 0; window < 5; window++) monitor.EndWindow();
  monitor.ObserveLookupsZeroResult(100);
  const monkey::Workload w = monitor.ObservedWorkload();
  EXPECT_GT(w.zero_result_lookups, 0.9);  // Recent lookups dominate.
}

TEST(WorkloadMonitor, RecommendsSwitchWhenWorkloadFlips) {
  monkey::Environment env;
  env.num_entries = 1e8;
  env.entry_size_bits = 128 * 8;
  env.total_memory_bits = 12.0 * env.num_entries;

  // The running design is write-optimized (tiering, large T).
  monkey::Workload writes;
  writes.updates = 0.95;
  writes.zero_result_lookups = 0.05;
  const monkey::Tuning current =
      monkey::AutotuneSizeRatioAndPolicy(env, writes);

  // Observed behaviour is read-heavy.
  monkey::WorkloadMonitor monitor;
  monitor.ObserveLookupsZeroResult(9500);
  monitor.ObserveUpdates(500);

  // A long horizon justifies the migration...
  const auto long_horizon =
      monitor.Recommend(env, current, /*transformation_ios=*/1e6,
                        /*horizon_ops=*/1e9);
  EXPECT_GT(long_horizon.gain_ios_per_op, 0);
  EXPECT_TRUE(long_horizon.worth_switching);
  EXPECT_EQ(long_horizon.tuning.policy, MergePolicy::kLeveling);

  // ...a short horizon does not.
  const auto short_horizon =
      monitor.Recommend(env, current, /*transformation_ios=*/1e6,
                        /*horizon_ops=*/10);
  EXPECT_FALSE(short_horizon.worth_switching);
}

TEST(WorkloadMonitor, NoSwitchWhenAlreadyOptimal) {
  monkey::Environment env;
  env.num_entries = 1e8;
  env.entry_size_bits = 128 * 8;
  env.total_memory_bits = 12.0 * env.num_entries;

  monkey::Workload mix;
  mix.zero_result_lookups = 0.5;
  mix.updates = 0.5;
  const monkey::Tuning current =
      monkey::AutotuneSizeRatioAndPolicy(env, mix);

  monkey::WorkloadMonitor monitor;
  monitor.ObserveLookupsZeroResult(500);
  monitor.ObserveUpdates(500);
  const auto rec = monitor.Recommend(env, current, 1e6, 1e9);
  // Gain vs an already-optimal design is ~0; not worth migrating.
  EXPECT_NEAR(rec.gain_ios_per_op, 0.0, 1e-6);
  EXPECT_FALSE(rec.worth_switching);
}

}  // namespace
}  // namespace monkeydb
