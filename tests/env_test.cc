// Tests for MemEnv, PosixEnv, CountingEnv (page-granular I/O accounting),
// and the DeviceModel.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/counting_env.h"
#include "io/env.h"
#include "io/io_stats.h"

namespace monkeydb {
namespace {

void ExerciseEnv(Env* env, const std::string& dir) {
  ASSERT_TRUE(env->CreateDir(dir).ok());
  const std::string fname = dir + "/file1";

  // Write.
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
    ASSERT_TRUE(file->Append("hello ").ok());
    ASSERT_TRUE(file->Append("world").ok());
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());
  }
  EXPECT_TRUE(env->FileExists(fname));
  uint64_t size = 0;
  ASSERT_TRUE(env->GetFileSize(fname, &size).ok());
  EXPECT_EQ(size, 11u);

  // Random access.
  {
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());
    char scratch[16];
    Slice result;
    ASSERT_TRUE(file->Read(6, 5, &result, scratch).ok());
    EXPECT_EQ(result.ToString(), "world");
    // Read past EOF returns a short read.
    ASSERT_TRUE(file->Read(9, 10, &result, scratch).ok());
    EXPECT_EQ(result.ToString(), "ld");
  }

  // Sequential.
  {
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(env->NewSequentialFile(fname, &file).ok());
    char scratch[16];
    Slice result;
    ASSERT_TRUE(file->Read(5, &result, scratch).ok());
    EXPECT_EQ(result.ToString(), "hello");
    ASSERT_TRUE(file->Skip(1).ok());
    ASSERT_TRUE(file->Read(16, &result, scratch).ok());
    EXPECT_EQ(result.ToString(), "world");
  }

  // Children, rename, remove.
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren(dir, &children).ok());
  EXPECT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "file1");

  ASSERT_TRUE(env->RenameFile(fname, dir + "/file2").ok());
  EXPECT_FALSE(env->FileExists(fname));
  EXPECT_TRUE(env->FileExists(dir + "/file2"));
  ASSERT_TRUE(env->RemoveFile(dir + "/file2").ok());
  EXPECT_FALSE(env->FileExists(dir + "/file2"));
  EXPECT_TRUE(env->RemoveFile(dir + "/file2").IsNotFound());
}

TEST(MemEnv, FullSurface) {
  auto env = NewMemEnv();
  ExerciseEnv(env.get(), "/test");
}

TEST(MemEnv, MissingFileIsNotFound) {
  auto env = NewMemEnv();
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(env->NewRandomAccessFile("/nope", &file).IsNotFound());
  uint64_t size;
  EXPECT_TRUE(env->GetFileSize("/nope", &size).IsNotFound());
}

TEST(MemEnv, TruncatesOnRewrite) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("0123456789").ok());
  ASSERT_TRUE(env->NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("ab").ok());
  uint64_t size;
  ASSERT_TRUE(env->GetFileSize("/f", &size).ok());
  EXPECT_EQ(size, 2u);
}

TEST(PosixEnv, FullSurface) {
  std::string dir = std::filesystem::temp_directory_path() /
                    ("monkeydb_env_test_" + std::to_string(::getpid()));
  ExerciseEnv(GetPosixEnv(), dir);
  std::filesystem::remove_all(dir);
}

TEST(CountingEnv, ChargesReadsByPagesTouched) {
  auto base = NewMemEnv();
  IoStats stats;
  CountingEnv env(base.get(), &stats, /*page_size_bytes=*/100);

  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
    const std::string payload = std::string(1000, 'x');
    ASSERT_TRUE(file->Append(payload).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  // 1000 bytes at 100-byte pages = exactly 10 write I/Os.
  EXPECT_EQ(stats.Snapshot().write_ios, 10u);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
  char scratch[300];
  Slice result;

  auto before = stats.Snapshot();
  // Within one page.
  ASSERT_TRUE(file->Read(10, 50, &result, scratch).ok());
  EXPECT_EQ((stats.Snapshot() - before).read_ios, 1u);

  before = stats.Snapshot();
  // Crosses one page boundary -> 2 pages.
  ASSERT_TRUE(file->Read(90, 20, &result, scratch).ok());
  EXPECT_EQ((stats.Snapshot() - before).read_ios, 2u);

  before = stats.Snapshot();
  // Exactly page-aligned read of one page.
  ASSERT_TRUE(file->Read(200, 100, &result, scratch).ok());
  EXPECT_EQ((stats.Snapshot() - before).read_ios, 1u);

  before = stats.Snapshot();
  // [99, 301) touches pages 0..3 -> 4 pages.
  ASSERT_TRUE(file->Read(99, 202, &result, scratch).ok());
  EXPECT_EQ((stats.Snapshot() - before).read_ios, 4u);
}

TEST(CountingEnv, ChargesPartialPageOnClose) {
  auto base = NewMemEnv();
  IoStats stats;
  CountingEnv env(base.get(), &stats, 100);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  const std::string payload = std::string(150, 'x');
  ASSERT_TRUE(file->Append(payload).ok());
  EXPECT_EQ(stats.Snapshot().write_ios, 1u);  // One full page so far.
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(stats.Snapshot().write_ios, 2u);  // Tail charged at close.
}

TEST(CountingEnv, SnapshotDelta) {
  IoStats stats;
  stats.AddRead(3, 300);
  auto a = stats.Snapshot();
  stats.AddRead(2, 200);
  stats.AddWrite(1, 100);
  auto d = stats.Snapshot() - a;
  EXPECT_EQ(d.read_ios, 2u);
  EXPECT_EQ(d.write_ios, 1u);
  EXPECT_EQ(d.bytes_read, 200u);
  EXPECT_EQ(d.bytes_written, 100u);
}

TEST(DeviceModel, SimulatedLatency) {
  IoStatsSnapshot s;
  s.read_ios = 10;
  s.write_ios = 5;
  DeviceModel hdd = DeviceModel::Hdd();  // 10ms, phi=1.
  EXPECT_DOUBLE_EQ(hdd.SimulatedSeconds(s), 0.15);
  DeviceModel flash = DeviceModel::Flash();  // 100us, phi=2.
  EXPECT_DOUBLE_EQ(flash.SimulatedSeconds(s), 10 * 100e-6 + 5 * 200e-6);
}

}  // namespace
}  // namespace monkeydb
