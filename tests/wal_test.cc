// WAL framing and batch encoding tests, including torn/corrupt tails.

#include "lsm/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "io/env.h"

namespace monkeydb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : env_(NewMemEnv()) {}

  std::unique_ptr<WalWriter> NewWriter(const std::string& path) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(path, &file).ok());
    return std::make_unique<WalWriter>(std::move(file));
  }

  std::unique_ptr<WalReader> NewReader(const std::string& path) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(path, &file).ok());
    return std::make_unique<WalReader>(std::move(file));
  }

  std::unique_ptr<Env> env_;
};

TEST_F(WalTest, RecordsRoundTrip) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddRecord("first", false).ok());
  ASSERT_TRUE(writer->AddRecord("second record", false).ok());
  ASSERT_TRUE(writer->AddRecord("", false).ok());  // Empty payload.
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("/wal");
  std::string scratch;
  Slice payload;
  ASSERT_TRUE(reader->ReadRecord(&scratch, &payload));
  EXPECT_EQ(payload.ToString(), "first");
  ASSERT_TRUE(reader->ReadRecord(&scratch, &payload));
  EXPECT_EQ(payload.ToString(), "second record");
  ASSERT_TRUE(reader->ReadRecord(&scratch, &payload));
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(reader->ReadRecord(&scratch, &payload));  // Clean EOF.
}

TEST_F(WalTest, TornTailStopsRecovery) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddRecord("complete", false).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Append a torn record: header promising more bytes than exist.
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env_->NewRandomAccessFile("/wal", &rfile).ok());
  char scratch[256];
  Slice contents;
  ASSERT_TRUE(rfile->Read(0, sizeof(scratch), &contents, scratch).ok());
  std::string data = contents.ToString();
  data += std::string(8, '\x7f');  // Garbage header.
  data += "xx";                    // Truncated body.
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env_->NewWritableFile("/wal", &wfile).ok());
  ASSERT_TRUE(wfile->Append(data).ok());
  ASSERT_TRUE(wfile->Close().ok());

  auto reader = NewReader("/wal");
  std::string rscratch;
  Slice payload;
  ASSERT_TRUE(reader->ReadRecord(&rscratch, &payload));
  EXPECT_EQ(payload.ToString(), "complete");
  EXPECT_FALSE(reader->ReadRecord(&rscratch, &payload));  // Torn tail.
}

TEST_F(WalTest, CorruptPayloadRejected) {
  auto writer = NewWriter("/wal");
  ASSERT_TRUE(writer->AddRecord("payload-to-corrupt", false).ok());
  ASSERT_TRUE(writer->Close().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env_->NewRandomAccessFile("/wal", &rfile).ok());
  char scratch[256];
  Slice contents;
  ASSERT_TRUE(rfile->Read(0, sizeof(scratch), &contents, scratch).ok());
  std::string data = contents.ToString();
  data[10] ^= 0x1;  // Flip a payload bit.
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env_->NewWritableFile("/wal", &wfile).ok());
  ASSERT_TRUE(wfile->Append(data).ok());
  ASSERT_TRUE(wfile->Close().ok());

  auto reader = NewReader("/wal");
  std::string rscratch;
  Slice payload;
  EXPECT_FALSE(reader->ReadRecord(&rscratch, &payload));  // CRC mismatch.
}

TEST(WalBatch, PutDeleteRoundTrip) {
  WalBatch batch(/*first_sequence=*/42);
  batch.Put("k1", "v1");
  batch.Delete("k2");
  const std::string payload_s = std::string(1000, 'z');
  batch.Put("k3", payload_s);
  EXPECT_EQ(batch.count(), 3u);

  std::vector<std::tuple<SequenceNumber, ValueType, std::string, std::string>>
      applied;
  ASSERT_TRUE(WalBatch::Iterate(batch.payload(),
                                [&](SequenceNumber seq, ValueType type,
                                    const Slice& key, const Slice& value) {
                                  applied.push_back({seq, type,
                                                     key.ToString(),
                                                     value.ToString()});
                                })
                  .ok());
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0],
            std::make_tuple(SequenceNumber{42}, ValueType::kValue,
                            std::string("k1"), std::string("v1")));
  EXPECT_EQ(applied[1],
            std::make_tuple(SequenceNumber{43}, ValueType::kDeletion,
                            std::string("k2"), std::string("")));
  EXPECT_EQ(std::get<0>(applied[2]), 44u);
  EXPECT_EQ(std::get<3>(applied[2]).size(), 1000u);
}

TEST(WalBatch, MalformedPayloadRejected) {
  EXPECT_TRUE(
      WalBatch::Iterate("short", [](auto, auto, auto&, auto&) {})
          .IsCorruption());

  WalBatch batch(1);
  batch.Put("key", "value");
  std::string truncated(batch.payload().data(), batch.payload().size() - 3);
  EXPECT_TRUE(WalBatch::Iterate(truncated, [](auto, auto, auto&, auto&) {})
                  .IsCorruption());
}

}  // namespace
}  // namespace monkeydb
