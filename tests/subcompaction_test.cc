// Range-partitioned subcompactions: a leveling merge split across a worker
// pool must produce output equivalent to the single-threaded merge — same
// surviving entries per level, same scans, same point lookups — because the
// partitions only change where run fragments are cut, never which entries
// survive. Also covers boundary edge cases (few distinct keys) and the
// background worker pool under concurrent writers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"

namespace monkeydb {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%05d", i);
  return buf;
}

DbOptions SmallTreeOptions(Env* env, int compaction_threads) {
  DbOptions options;
  options.env = env;
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 3.0;
  options.buffer_size_bytes = 8 << 10;  // Small: many flushes and merges.
  options.compaction_threads = compaction_threads;
  return options;
}

// Overwrites and deletes across several generations, so merges must both
// drop superseded versions and purge tombstones.
void ApplyWorkload(DB* db, int num_keys, int generations) {
  WriteOptions wo;
  for (int gen = 0; gen < generations; gen++) {
    for (int i = 0; i < num_keys; i++) {
      const std::string key = Key(i);
      const std::string val = "g" + std::to_string(gen) + "_" + key;
      ASSERT_TRUE(db->Put(wo, key, val).ok());
    }
    for (int i = gen; i < num_keys; i += 5) {
      const std::string key = Key(i);
      ASSERT_TRUE(db->Delete(wo, key).ok());
    }
  }
  ASSERT_TRUE(db->Flush().ok());
}

std::vector<std::pair<std::string, std::string>> FullScan(DB* db) {
  std::vector<std::pair<std::string, std::string>> out;
  auto iter = db->NewIterator(ReadOptions());
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    out.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  return out;
}

TEST(Subcompaction, ParallelMergeMatchesSingleThreaded) {
  constexpr int kNumKeys = 1500;
  constexpr int kGenerations = 3;

  auto env1 = NewMemEnv();
  auto env4 = NewMemEnv();
  std::unique_ptr<DB> db1, db4;
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env1.get(), 1), "/db", &db1).ok());
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env4.get(), 4), "/db", &db4).ok());

  ApplyWorkload(db1.get(), kNumKeys, kGenerations);
  ApplyWorkload(db4.get(), kNumKeys, kGenerations);

  // Same merge decisions, so the same entries survive at each level; only
  // the fragmentation into runs may differ.
  const DbStats s1 = db1->GetStats();
  const DbStats s4 = db4->GetStats();
  EXPECT_EQ(s1.total_disk_entries, s4.total_disk_entries);
  EXPECT_EQ(s1.deepest_level, s4.deepest_level);
  ASSERT_EQ(s1.entries_per_level.size(), s4.entries_per_level.size());
  for (size_t i = 0; i < s1.entries_per_level.size(); i++) {
    EXPECT_EQ(s1.entries_per_level[i], s4.entries_per_level[i])
        << "level " << i + 1;
  }
  EXPECT_GT(s4.merges, 0u);

  EXPECT_EQ(FullScan(db1.get()), FullScan(db4.get()));

  // Spot-check lookups: last generation's deletes hit keys = gen-1 mod 5
  // onwards; every key deleted in the final generation must be NotFound in
  // both, survivors must agree.
  ReadOptions ro;
  std::string v1, v4;
  for (int i = 0; i < kNumKeys; i += 7) {
    const std::string key = Key(i);
    const Status g1 = db1->Get(ro, key, &v1);
    const Status g4 = db4->Get(ro, key, &v4);
    EXPECT_EQ(g1.ok(), g4.ok()) << key;
    EXPECT_EQ(g1.IsNotFound(), g4.IsNotFound()) << key;
    if (g1.ok() && g4.ok()) {
      EXPECT_EQ(v1, v4) << key;
    }
  }
}

TEST(Subcompaction, CompactAllMatchesSingleThreaded) {
  auto env1 = NewMemEnv();
  auto env4 = NewMemEnv();
  std::unique_ptr<DB> db1, db4;
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env1.get(), 1), "/db", &db1).ok());
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env4.get(), 4), "/db", &db4).ok());

  ApplyWorkload(db1.get(), 1000, 2);
  ApplyWorkload(db4.get(), 1000, 2);
  ASSERT_TRUE(db1->CompactAll().ok());
  ASSERT_TRUE(db4->CompactAll().ok());

  EXPECT_EQ(db1->GetStats().total_disk_entries,
            db4->GetStats().total_disk_entries);
  EXPECT_EQ(FullScan(db1.get()), FullScan(db4.get()));
}

// With only a handful of distinct user keys, there are fewer fence-pointer
// boundaries than workers. The partitioner must clamp (never split between
// versions of one user key) and still converge to the right final state.
TEST(Subcompaction, FewDistinctKeysManyOverwrites) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env.get(), 4), "/db", &db).ok());

  WriteOptions wo;
  constexpr int kDistinct = 5;
  constexpr int kOverwrites = 2000;
  for (int i = 0; i < kOverwrites; i++) {
    for (int k = 0; k < kDistinct; k++) {
      const std::string key = "hot" + std::to_string(k);
      const std::string payload = std::string(48, 'a' + (i + k) % 26) + std::to_string(i);
      ASSERT_TRUE(
          db->Put(wo, key,
                  payload)
              .ok());
    }
  }
  ASSERT_TRUE(db->Flush().ok());

  ReadOptions ro;
  std::string value;
  for (int k = 0; k < kDistinct; k++) {
    const std::string key = "hot" + std::to_string(k);
    ASSERT_TRUE(db->Get(ro, key, &value).ok()) << k;
    EXPECT_EQ(value,
              std::string(48, 'a' + (kOverwrites - 1 + k) % 26) +
                  std::to_string(kOverwrites - 1))
        << k;
  }
  EXPECT_EQ(FullScan(db.get()).size(), static_cast<size_t>(kDistinct));
}

// A single-key database exercises the most degenerate partitioning input.
TEST(Subcompaction, SingleKeyTree) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env.get(), 4), "/db", &db).ok());

  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string payload = std::string(40, 'x') + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, "only", payload)
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  ReadOptions ro;
  std::string value;
  ASSERT_TRUE(db->Get(ro, "only", &value).ok());
  EXPECT_EQ(value, std::string(40, 'x') + "4999");
  EXPECT_LE(db->GetStats().total_disk_entries, 2u);
}

// Worker pool + background mode + concurrent writers: flushes must keep
// priority over merges and everything must drain cleanly on Flush().
TEST(Subcompaction, BackgroundPoolStress) {
  auto env = NewMemEnv();
  DbOptions options = SmallTreeOptions(env.get(), 4);
  options.background_compaction = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 1500;
  std::atomic<int> write_errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < kWritesPerThread; i++) {
        const std::string key =
            "t" + std::to_string(t) + "_" + Key(i % 500);
        const std::string val = "v" + std::to_string(i);
        if (!db->Put(wo, key, val).ok()) {
          write_errors.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_EQ(write_errors.load(), 0);
  ASSERT_TRUE(db->Flush().ok());

  ReadOptions ro;
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < 500; i += 13) {
      const std::string key = "t" + std::to_string(t) + "_" + Key(i);
      ASSERT_TRUE(db->Get(ro, key, &value).ok()) << key;
      // Last overwrite of slot i was at iteration i + 500*k for the
      // largest k with i + 500*k < kWritesPerThread.
      const int last = i + 500 * ((kWritesPerThread - 1 - i) / 500);
      EXPECT_EQ(value, "v" + std::to_string(last)) << key;
    }
  }
  EXPECT_EQ(FullScan(db.get()).size(),
            static_cast<size_t>(kThreads) * 500);
}

// Snapshots pinned across parallel merges must keep their versions: the
// shared PrepareJobLocked decision (including the snapshot floor) applies
// to every fragment.
TEST(Subcompaction, SnapshotSurvivesParallelMerges) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallTreeOptions(env.get(), 4), "/db", &db).ok());

  WriteOptions wo;
  for (int i = 0; i < 300; i++) {
    const std::string key = Key(i);
    ASSERT_TRUE(db->Put(wo, key, "old").ok());
  }
  const Snapshot* snap = db->GetSnapshot();
  for (int gen = 0; gen < 10; gen++) {
    for (int i = 0; i < 300; i++) {
      const std::string key = Key(i);
      const std::string val = "new" + std::to_string(gen);
      ASSERT_TRUE(db->Put(wo, key, val).ok());
    }
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GT(db->GetStats().merges, 0u);

  ReadOptions snap_ro;
  snap_ro.snapshot = snap;
  std::string value;
  for (int i = 0; i < 300; i += 11) {
    const std::string key = Key(i);
    ASSERT_TRUE(db->Get(snap_ro, key, &value).ok()) << i;
    EXPECT_EQ(value, "old") << i;
  }
  db->ReleaseSnapshot(snap);
}

}  // namespace
}  // namespace monkeydb
