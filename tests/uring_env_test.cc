// Tests for UringEnv: batched reads must be byte-identical to PosixEnv
// (across block boundaries, short tails, EOF clamps), the forced-probe
// failure must drive the automatic PosixEnv fallback in DB::Open, and the
// O_DIRECT path must survive unaligned requests and partial tail blocks.
//
// Every test is skipped (not failed) when the kernel/container cannot set
// up a ring — the CI fallback leg runs exactly that configuration.

#include "io/uring_env.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/aligned_read.h"
#include "lsm/db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

std::string TestDir(const char* name) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          (std::string("monkeydb_uring_test_") + name + "." +
                           std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// Writes `size` pseudo-random bytes to fname through env and returns them.
std::string WriteRandomFile(Env* env, const std::string& fname, size_t size,
                            uint32_t seed) {
  Random rng(seed);
  std::string data;
  data.reserve(size);
  for (size_t i = 0; i < size; i++) {
    data.push_back(static_cast<char>(rng.Uniform(256)));
  }
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env->NewWritableFile(fname, &file).ok());
  EXPECT_TRUE(file->Append(data).ok());
  EXPECT_TRUE(file->Close().ok());
  return data;
}

// Opens a UringEnv with the given options, or GTEST_SKIPs the test when
// the kernel/container cannot set up a ring.
#define OPEN_URING_OR_SKIP(env_var, options)                               \
  Status probe_status;                                                     \
  auto env_var = NewUringEnv(options, &probe_status);                      \
  if (env_var == nullptr) {                                                \
    GTEST_SKIP() << "io_uring unavailable: " << probe_status.ToString();   \
  }

// Issues one ReadBatch over the given (offset, n) spans on both backends
// and asserts byte-identical results and statuses.
void CompareBatch(Env* posix, UringEnv* uring, const std::string& fname,
                  const std::vector<std::pair<uint64_t, size_t>>& spans) {
  std::unique_ptr<RandomAccessFile> pfile, ufile;
  ASSERT_TRUE(posix->NewRandomAccessFile(fname, &pfile).ok());
  ASSERT_TRUE(uring->NewRandomAccessFile(fname, &ufile).ok());
  ASSERT_TRUE(ufile->SupportsReadBatch());

  std::vector<std::string> pbufs(spans.size()), ubufs(spans.size());
  std::vector<ReadRequest> preqs(spans.size()), ureqs(spans.size());
  for (size_t i = 0; i < spans.size(); i++) {
    pbufs[i].resize(spans[i].second + 1);
    ubufs[i].resize(spans[i].second + 1);
    preqs[i].offset = ureqs[i].offset = spans[i].first;
    preqs[i].n = ureqs[i].n = spans[i].second;
    preqs[i].scratch = pbufs[i].data();
    ureqs[i].scratch = ubufs[i].data();
  }
  // PosixEnv has no batch primitive: the default ReadBatch loops over
  // Read, which is the semantic baseline the ring must match.
  ASSERT_TRUE(pfile->ReadBatch(preqs.data(), preqs.size()).ok());
  ASSERT_TRUE(ufile->ReadBatch(ureqs.data(), ureqs.size()).ok());
  for (size_t i = 0; i < spans.size(); i++) {
    EXPECT_EQ(preqs[i].status.ok(), ureqs[i].status.ok())
        << "span " << i << ": posix=" << preqs[i].status.ToString()
        << " uring=" << ureqs[i].status.ToString();
    if (!preqs[i].status.ok()) continue;
    EXPECT_EQ(preqs[i].result.ToString(), ureqs[i].result.ToString())
        << "span " << i << " offset=" << spans[i].first
        << " n=" << spans[i].second;
  }
}

TEST(UringEnv, BatchReadsByteIdenticalToPosix) {
  OPEN_URING_OR_SKIP(uring, UringEnvOptions());
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("identical");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  // ~3.3 blocks of 4 KiB so spans can straddle boundaries and the tail.
  const size_t kSize = 3 * 4096 + 1234;
  WriteRandomFile(posix, fname, kSize, 42);

  CompareBatch(posix, uring.get(), fname,
               {
                   {0, 100},                 // Head.
                   {4096 - 50, 100},         // Straddles block 0/1 boundary.
                   {2 * 4096 - 1, 4098},     // Straddles two boundaries.
                   {kSize - 10, 10},         // Exact tail.
                   {kSize - 10, 100},        // Clamped past EOF.
                   {kSize + 5, 10},          // Entirely past EOF.
                   {500, 0},                 // Empty request.
                   {0, kSize},               // Whole file in one request.
               });
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, LargeBatchExceedingRingDepth) {
  // More requests than SQ entries: SubmitAndWait must chunk.
  UringEnvOptions tiny_ring;
  tiny_ring.ring_entries = 4;
  OPEN_URING_OR_SKIP(uring, tiny_ring);
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("chunked");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  const size_t kSize = 64 * 1024;
  WriteRandomFile(posix, fname, kSize, 43);

  std::vector<std::pair<uint64_t, size_t>> spans;
  Random rng(7);
  for (int i = 0; i < 33; i++) {
    const uint64_t off = rng.Uniform(kSize);
    spans.emplace_back(off, 1 + rng.Uniform(2000));
  }
  CompareBatch(posix, uring.get(), fname, spans);
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, SingleReadsMatchPosix) {
  OPEN_URING_OR_SKIP(uring, UringEnvOptions());
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("single");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  const std::string data = WriteRandomFile(posix, fname, 10000, 44);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(uring->NewRandomAccessFile(fname, &file).ok());
  std::string scratch(5000, '\0');
  Slice result;
  ASSERT_TRUE(file->Read(100, 200, &result, scratch.data()).ok());
  EXPECT_EQ(result.ToString(), data.substr(100, 200));
  // Short read at EOF.
  ASSERT_TRUE(file->Read(9990, 100, &result, scratch.data()).ok());
  EXPECT_EQ(result.ToString(), data.substr(9990));
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, BatchCountersAdvance) {
  OPEN_URING_OR_SKIP(uring, UringEnvOptions());
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("counters");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  WriteRandomFile(posix, fname, 32 * 1024, 45);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(uring->NewRandomAccessFile(fname, &file).ok());
  const UringStatsSnapshot before = uring->Stats();

  std::vector<std::string> bufs(8);
  std::vector<ReadRequest> reqs(8);
  for (size_t i = 0; i < reqs.size(); i++) {
    bufs[i].resize(512);
    reqs[i].offset = i * 4096;
    reqs[i].n = 512;
    reqs[i].scratch = bufs[i].data();
  }
  ASSERT_TRUE(file->ReadBatch(reqs.data(), reqs.size()).ok());

  const UringStatsSnapshot after = uring->Stats();
  EXPECT_EQ(after.sqes_submitted - before.sqes_submitted, 8u);
  EXPECT_EQ(after.batched_requests - before.batched_requests, 8u);
  EXPECT_GE(after.batch_submits - before.batch_submits, 1u);
  // 8 requests through >= 1 enter: the amortization the ring exists for.
  EXPECT_GE(after.BatchedPerSyscall(), 1.0);
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, CancellationMidBatch) {
  // A batch where some requests fail (span a hole past EOF) must still
  // complete the others and report per-request statuses, not abandon the
  // ring mid-flight.
  OPEN_URING_OR_SKIP(uring, UringEnvOptions());
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("cancel");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  const std::string data = WriteRandomFile(posix, fname, 8192, 46);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(uring->NewRandomAccessFile(fname, &file).ok());

  std::vector<std::string> bufs(4);
  std::vector<ReadRequest> reqs(4);
  const std::pair<uint64_t, size_t> spans[4] = {
      {0, 1000}, {100000, 100}, {4000, 1000}, {8191, 1}};
  for (size_t i = 0; i < 4; i++) {
    bufs[i].resize(spans[i].second);
    reqs[i].offset = spans[i].first;
    reqs[i].n = spans[i].second;
    reqs[i].scratch = bufs[i].data();
  }
  ASSERT_TRUE(file->ReadBatch(reqs.data(), 4).ok());
  ASSERT_TRUE(reqs[0].status.ok());
  EXPECT_EQ(reqs[0].result.ToString(), data.substr(0, 1000));
  ASSERT_TRUE(reqs[1].status.ok());  // Past EOF: empty result, not error.
  EXPECT_EQ(reqs[1].result.size(), 0u);
  ASSERT_TRUE(reqs[2].status.ok());
  EXPECT_EQ(reqs[2].result.ToString(), data.substr(4000, 1000));
  ASSERT_TRUE(reqs[3].status.ok());
  EXPECT_EQ(reqs[3].result.ToString(), data.substr(8191, 1));
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, ForcedProbeFailureFallsBackInDbOpen) {
  // Force the probe down, open a DB with io_backend=kUring, and confirm it
  // comes up on posix with a recorded fallback event.
  ForceUringUnsupportedForTesting(true);
  EXPECT_FALSE(IoUringSupported());
  Status status;
  EXPECT_EQ(NewUringEnv(UringEnvOptions(), &status), nullptr);
  EXPECT_FALSE(status.ok());

  const std::string dir = TestDir("fallback");
  const uint64_t fallbacks_before = UringFallbackEvents();
  DbOptions options;
  options.io_backend = IoBackend::kUring;
  options.expected_entries = 1000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  EXPECT_GT(UringFallbackEvents(), fallbacks_before);

  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "k", "v").ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "v");
  db.reset();

  ForceUringUnsupportedForTesting(false);
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, DbOpenOnUringBackend) {
  {
    OPEN_URING_OR_SKIP(probe, UringEnvOptions());
  }
  const std::string dir = TestDir("db");
  DbOptions options;
  options.io_backend = IoBackend::kUring;
  options.buffer_size_bytes = 16 << 10;
  options.expected_entries = 5000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  WriteOptions wo;
  const std::string value(100, 'v');
  for (int i = 0; i < 5000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Point reads and MultiGet (the batched stage-3 path) both verify.
  std::string got;
  std::vector<std::string> key_storage;
  for (int i = 0; i < 5000; i += 7) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    ASSERT_EQ(got, value);
    if (key_storage.size() < 16) key_storage.push_back(key);
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  for (const Status& s : db->MultiGet(ReadOptions(), keys, &values)) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  for (const std::string& v : values) EXPECT_EQ(v, value);
  db.reset();
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, DirectIoAlignmentEdgeCases) {
  UringEnvOptions direct_options;
  direct_options.use_direct_io = true;
  Status probe_status;
  auto uring = NewUringEnv(direct_options, &probe_status);
  if (uring == nullptr) {
    GTEST_SKIP() << "io_uring unavailable: " << probe_status.ToString();
  }
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("direct");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  // Deliberately NOT a multiple of the 4 KiB alignment: the last block is
  // a partial tail, the edge O_DIRECT handles worst.
  const size_t kSize = 2 * kDirectIoAlignment + 777;
  const std::string data = WriteRandomFile(posix, fname, kSize, 47);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(uring->NewRandomAccessFile(fname, &file).ok());

  const std::pair<uint64_t, size_t> spans[] = {
      {0, 10},                          // Aligned start, tiny.
      {1, 10},                          // Unaligned start.
      {kDirectIoAlignment - 5, 10},     // Straddles an alignment boundary.
      {kSize - 777, 777},               // Exactly the partial tail block.
      {kSize - 10, 50},                 // Clamped read into the tail.
      {kSize - 1, 1},                   // Last byte.
      {0, kSize},                       // Whole file.
  };
  for (const auto& span : spans) {
    std::string scratch(span.second + 1, '\0');
    Slice result;
    ASSERT_TRUE(
        file->Read(span.first, span.second, &result, scratch.data()).ok())
        << "offset=" << span.first << " n=" << span.second;
    const size_t expect_len =
        span.first + span.second <= kSize ? span.second : kSize - span.first;
    EXPECT_EQ(result.ToString(), data.substr(span.first, expect_len))
        << "offset=" << span.first << " n=" << span.second;
  }

  // The same spans through one batch.
  std::vector<std::string> bufs(std::size(spans));
  std::vector<ReadRequest> reqs(std::size(spans));
  for (size_t i = 0; i < std::size(spans); i++) {
    bufs[i].resize(spans[i].second + 1);
    reqs[i].offset = spans[i].first;
    reqs[i].n = spans[i].second;
    reqs[i].scratch = bufs[i].data();
  }
  ASSERT_TRUE(file->ReadBatch(reqs.data(), reqs.size()).ok());
  for (size_t i = 0; i < std::size(spans); i++) {
    ASSERT_TRUE(reqs[i].status.ok()) << i << ": "
                                     << reqs[i].status.ToString();
    const size_t expect_len = spans[i].first + spans[i].second <= kSize
                                  ? spans[i].second
                                  : kSize - spans[i].first;
    EXPECT_EQ(reqs[i].result.ToString(),
              data.substr(spans[i].first, expect_len))
        << "batch span " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(UringEnv, ReadAheadClampsAtEof) {
  OPEN_URING_OR_SKIP(uring, UringEnvOptions());
  Env* posix = GetPosixEnv();
  const std::string dir = TestDir("readahead");
  ASSERT_TRUE(posix->CreateDir(dir).ok());
  const std::string fname = dir + "/blob";
  WriteRandomFile(posix, fname, 4096, 48);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(uring->NewRandomAccessFile(fname, &file).ok());
  // Hints past EOF and over-long hints must be no-ops, not UB.
  file->ReadAhead(0, 1 << 20);
  file->ReadAhead(100000, 4096);
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(0, 16, &result, scratch).ok());
  EXPECT_EQ(result.size(), 16u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace monkeydb
