#include "io/block_cache.h"

#include <gtest/gtest.h>

namespace monkeydb {
namespace {

std::shared_ptr<const std::string> MakeBlock(size_t size, char fill) {
  return std::make_shared<const std::string>(size, fill);
}

// Mirrors BlockCache's internal hash so tests can pick keys that land in a
// chosen shard (there are 16 shards).
size_t ShardOf(const BlockCache::Key& k) {
  uint64_t h = k.file_id * 0x9E3779B97F4A7C15ULL;
  h ^= k.offset + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return static_cast<size_t>(h) % 16;
}

TEST(BlockCache, InsertLookup) {
  BlockCache cache(1 << 20);
  BlockCache::Key key{1, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(key, MakeBlock(100, 'a'));
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ((*hit)[0], 'a');
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCache, ZeroCapacityDisables) {
  BlockCache cache(0);
  BlockCache::Key key{1, 0};
  cache.Insert(key, MakeBlock(10, 'a'));
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.usage_bytes(), 0u);
}

TEST(BlockCache, ReplacesExistingEntry) {
  BlockCache cache(1 << 20);
  BlockCache::Key key{1, 0};
  cache.Insert(key, MakeBlock(100, 'a'));
  cache.Insert(key, MakeBlock(50, 'b'));
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 50u);
  EXPECT_LE(cache.usage_bytes(), 50u + 10);
}

TEST(BlockCache, EvictsLruWithinShard) {
  // All keys with the same file_id and offsets chosen to land in one shard
  // is hard to arrange; instead use a small cache and many inserts, then
  // check usage stays bounded near capacity.
  BlockCache cache(16 * 1024);
  for (uint64_t i = 0; i < 1000; i++) {
    cache.Insert(BlockCache::Key{i, 0}, MakeBlock(512, 'x'));
  }
  // Per-shard capacity is 1 KB; a shard may briefly hold one oversized
  // entry, so allow slack.
  EXPECT_LE(cache.usage_bytes(), 16u * 1024 + 16 * 512);
}

TEST(BlockCache, LruKeepsRecentlyUsed) {
  // Single-entry-per-insert workload touching one key repeatedly: that key
  // should survive eviction pressure from other keys in other shards only
  // if its shard isn't overfull — touch it between inserts to keep it hot.
  BlockCache cache(4096 * 16);
  BlockCache::Key hot{42, 4096};
  cache.Insert(hot, MakeBlock(256, 'h'));
  for (uint64_t i = 0; i < 200; i++) {
    cache.Insert(BlockCache::Key{100 + i, 0}, MakeBlock(256, 'c'));
    ASSERT_NE(cache.Lookup(hot), nullptr) << "hot key evicted at i=" << i;
  }
}

// Regression: per-shard capacity must round up, not floor. With 1599 bytes
// over 16 shards, flooring gives each shard only 99 bytes, so two 50-byte
// blocks in the same shard (100 bytes) would evict one of them despite the
// total budget having room; the rounded-up allowance of 100 keeps both.
TEST(BlockCache, PerShardCapacityRoundsUp) {
  BlockCache cache(1599);
  const BlockCache::Key a{1, 0};
  BlockCache::Key b{1, 0};
  bool found = false;
  for (uint64_t off = 1; off < 100000 && !found; off++) {
    b = BlockCache::Key{1, off};
    found = (ShardOf(b) == ShardOf(a));
  }
  ASSERT_TRUE(found) << "no same-shard sibling key found";

  cache.Insert(a, MakeBlock(50, 'a'));
  cache.Insert(b, MakeBlock(50, 'b'));
  EXPECT_NE(cache.Lookup(a), nullptr) << "first block evicted by shard cap";
  EXPECT_NE(cache.Lookup(b), nullptr);
  EXPECT_EQ(cache.usage_bytes(), 100u);
}

// Capacities below the shard count must not zero every shard's allowance.
TEST(BlockCache, TinyCapacityStillCaches) {
  BlockCache cache(8);  // Fewer bytes than shards.
  BlockCache::Key key{3, 0};
  cache.Insert(key, MakeBlock(1, 'x'));
  EXPECT_NE(cache.Lookup(key), nullptr);
}

TEST(BlockCache, EraseFileDropsAllItsBlocks) {
  BlockCache cache(1 << 20);
  for (uint64_t off = 0; off < 10; off++) {
    cache.Insert(BlockCache::Key{7, off * 4096}, MakeBlock(100, 'a'));
    cache.Insert(BlockCache::Key{8, off * 4096}, MakeBlock(100, 'b'));
  }
  cache.EraseFile(7);
  for (uint64_t off = 0; off < 10; off++) {
    EXPECT_EQ(cache.Lookup(BlockCache::Key{7, off * 4096}), nullptr);
    EXPECT_NE(cache.Lookup(BlockCache::Key{8, off * 4096}), nullptr);
  }
}

TEST(BlockCache, SharedPtrOutlivesEviction) {
  BlockCache cache(8 * 1024);
  BlockCache::Key key{1, 0};
  cache.Insert(key, MakeBlock(512, 'z'));
  auto pinned = cache.Lookup(key);
  ASSERT_NE(pinned, nullptr);
  // Force heavy eviction.
  for (uint64_t i = 0; i < 500; i++) {
    cache.Insert(BlockCache::Key{i + 10, 0}, MakeBlock(512, 'x'));
  }
  // The pinned block data remains valid regardless of eviction.
  EXPECT_EQ((*pinned)[0], 'z');
}

}  // namespace
}  // namespace monkeydb
