// SkipList and MemTable tests, including a randomized cross-check against
// std::map.

#include "memtable/memtable.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "memtable/skiplist.h"
#include "util/random.h"

namespace monkeydb {
namespace {

struct IntPtrCmp {
  int operator()(const char* a, const char* b) const {
    const int ia = *reinterpret_cast<const int*>(a);
    const int ib = *reinterpret_cast<const int*>(b);
    return (ia < ib) ? -1 : (ia > ib) ? 1 : 0;
  }
};

TEST(SkipList, InsertContainsIterate) {
  Arena arena;
  SkipList<const char*, IntPtrCmp> list(IntPtrCmp{}, &arena);

  std::vector<int> keys = {5, 1, 9, 3, 7, 2, 8, 0, 6, 4};
  std::vector<std::unique_ptr<int>> storage;
  for (int k : keys) {
    storage.push_back(std::make_unique<int>(k));
    list.Insert(reinterpret_cast<const char*>(storage.back().get()));
  }
  for (int k : keys) {
    int probe = k;
    EXPECT_TRUE(list.Contains(reinterpret_cast<const char*>(&probe)));
  }
  int absent = 42;
  EXPECT_FALSE(list.Contains(reinterpret_cast<const char*>(&absent)));

  // In-order iteration.
  SkipList<const char*, IntPtrCmp>::Iterator it(&list);
  int expected = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    EXPECT_EQ(*reinterpret_cast<const int*>(it.key()), expected++);
  }
  EXPECT_EQ(expected, 10);

  // Seek.
  int target = 6;
  it.Seek(reinterpret_cast<const char*>(&target));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(*reinterpret_cast<const int*>(it.key()), 6);

  // SeekToLast and Prev.
  it.SeekToLast();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(*reinterpret_cast<const int*>(it.key()), 9);
  it.Prev();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(*reinterpret_cast<const int*>(it.key()), 8);
}

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest()
      : comparator_(BytewiseComparator()), mem_(comparator_) {}

  Status Get(const std::string& key, std::string* value, bool* found) {
    LookupKey lookup(key, kMaxSequenceNumber);
    return mem_.Get(lookup, value, found);
  }

  InternalKeyComparator comparator_;
  MemTable mem_;
};

TEST_F(MemTableTest, AddGet) {
  mem_.Add(1, ValueType::kValue, "apple", "red");
  mem_.Add(2, ValueType::kValue, "banana", "yellow");

  std::string value;
  bool found;
  ASSERT_TRUE(Get("apple", &value, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "red");

  EXPECT_TRUE(Get("cherry", &value, &found).IsNotFound());
  EXPECT_FALSE(found);
}

TEST_F(MemTableTest, NewestVersionWins) {
  mem_.Add(1, ValueType::kValue, "k", "v1");
  mem_.Add(5, ValueType::kValue, "k", "v5");
  mem_.Add(3, ValueType::kValue, "k", "v3");

  std::string value;
  bool found;
  ASSERT_TRUE(Get("k", &value, &found).ok());
  EXPECT_EQ(value, "v5");
}

TEST_F(MemTableTest, TombstoneHidesValue) {
  mem_.Add(1, ValueType::kValue, "k", "v");
  mem_.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  bool found;
  Status s = Get("k", &value, &found);
  EXPECT_TRUE(found);  // The tombstone is an entry...
  EXPECT_TRUE(s.IsNotFound());  // ...but the key reads as absent.
}

TEST_F(MemTableTest, SnapshotVisibility) {
  mem_.Add(10, ValueType::kValue, "k", "new");
  // A lookup at sequence 5 must not see the sequence-10 write.
  LookupKey old_lookup("k", 5);
  std::string value;
  bool found;
  Status s = mem_.Get(old_lookup, &value, &found);
  EXPECT_FALSE(found);
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(MemTableTest, IteratorYieldsInternalOrder) {
  mem_.Add(1, ValueType::kValue, "b", "1");
  mem_.Add(2, ValueType::kValue, "a", "2");
  mem_.Add(3, ValueType::kValue, "b", "3");  // Newer "b".

  auto iter = mem_.NewIterator();
  std::vector<std::pair<std::string, uint64_t>> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    seen.push_back({parsed.user_key.ToString(), parsed.sequence});
  }
  // "a" first; then "b" newest-first (seq 3 before seq 1).
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, uint64_t>{"a", 2}));
  EXPECT_EQ(seen[1], (std::pair<std::string, uint64_t>{"b", 3}));
  EXPECT_EQ(seen[2], (std::pair<std::string, uint64_t>{"b", 1}));
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  const size_t before = mem_.ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string payload = std::string(100, 'v');
    mem_.Add(i + 1, ValueType::kValue, key,
             payload);
  }
  EXPECT_GT(mem_.ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(mem_.num_entries(), 1000u);
}

TEST_F(MemTableTest, RandomizedAgainstStdMap) {
  Random rng(2024);
  std::map<std::string, std::pair<uint64_t, std::string>> model;  // key -> (seq, value)
  SequenceNumber seq = 0;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "k" + std::to_string(rng.Uniform(500));
    seq++;
    if (rng.Bernoulli(0.8)) {
      const std::string value = "v" + std::to_string(rng.Next() % 1000);
      mem_.Add(seq, ValueType::kValue, key, value);
      model[key] = {seq, value};
    } else {
      mem_.Add(seq, ValueType::kDeletion, key, "");
      model[key] = {seq, ""};  // Empty marks deletion in the model.
    }
  }
  for (int i = 0; i < 500; i++) {
    const std::string key = "k" + std::to_string(i);
    std::string value;
    bool found;
    Status s = Get(key, &value, &found);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_FALSE(found) << key;
    } else if (it->second.second.empty()) {
      EXPECT_TRUE(found) << key;
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      EXPECT_TRUE(found) << key;
      ASSERT_TRUE(s.ok()) << key;
      EXPECT_EQ(value, it->second.second) << key;
    }
  }
}

}  // namespace
}  // namespace monkeydb
