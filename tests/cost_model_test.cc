// Closed-form cost-model tests: internal consistency, the paper's limiting
// behaviours (Table 1, Figs. 4/7/8), and Monkey-dominates-baseline.

#include "monkey/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace monkeydb {
namespace monkey {
namespace {

// The paper's Fig. 7 configuration: 512 TB of data, N = 2^35, E = 16 bytes,
// T = 4, buffer 2 MB. (The text says 512 GB-scale; what matters here is the
// geometry.)
DesignPoint PaperConfig() {
  DesignPoint d;
  d.policy = MergePolicy::kLeveling;
  d.size_ratio = 4.0;
  d.num_entries = std::pow(2.0, 35);
  d.entry_size_bits = 16 * 8;
  d.buffer_bits = 2.0 * (1 << 20) * 8;
  d.filter_bits = 10.0 * d.num_entries;
  d.entries_per_page = 4096.0 * 8 / d.entry_size_bits;
  return d;
}

TEST(CostModel, NumLevelsMatchesEq1) {
  DesignPoint d = PaperConfig();
  // Eq. 1: L = ceil(log_T(N*E/Mbuf * (T-1)/T)).
  const double expected = std::ceil(
      std::log((d.num_entries * d.entry_size_bits / d.buffer_bits) * 3.0 /
               4.0) /
      std::log(4.0));
  EXPECT_EQ(NumLevels(d), static_cast<int>(expected));
  EXPECT_GE(NumLevels(d), 5);  // Sizeable tree at this scale.
}

TEST(CostModel, LevelCountShrinksWithBufferAndT) {
  DesignPoint d = PaperConfig();
  const int base = NumLevels(d);
  DesignPoint bigger_buffer = d;
  bigger_buffer.buffer_bits *= 64;
  EXPECT_LT(NumLevels(bigger_buffer), base);

  DesignPoint bigger_t = d;
  bigger_t.size_ratio = 16.0;
  EXPECT_LT(NumLevels(bigger_t), base);

  // As T approaches T_lim the tree collapses to one level (Sec. 2).
  DesignPoint at_limit = d;
  at_limit.size_ratio = SizeRatioLimit(d);
  EXPECT_EQ(NumLevels(at_limit), 1);
}

TEST(CostModel, LevelingEqualsTieringAtT2) {
  // "When the size ratio T is set to 2, the complexities of lookup and
  // update costs for tiering and leveling become identical."
  DesignPoint lev = PaperConfig();
  lev.size_ratio = 2.0;
  lev.policy = MergePolicy::kLeveling;
  DesignPoint tier = lev;
  tier.policy = MergePolicy::kTiering;

  EXPECT_NEAR(ZeroResultLookupCost(lev), ZeroResultLookupCost(tier), 1e-9);
  EXPECT_NEAR(UpdateCost(lev), UpdateCost(tier), 1e-9);
  EXPECT_NEAR(BaselineZeroResultLookupCost(lev),
              BaselineZeroResultLookupCost(tier), 1e-9);
  EXPECT_NEAR(RangeLookupCost(lev, 0.01), RangeLookupCost(tier, 0.01), 1e-9);
}

TEST(CostModel, MonkeyDominatesBaselineEverywhere) {
  // Fig. 7: R <= R_art for every filter budget; Fig. 8: for every (policy,
  // T) combination.
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering}) {
    for (double t : {2.0, 3.0, 4.0, 8.0, 16.0}) {
      for (double bits_per_entry :
           {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 16.0}) {
        DesignPoint d = PaperConfig();
        d.policy = policy;
        d.size_ratio = t;
        d.filter_bits = bits_per_entry * d.num_entries;
        EXPECT_LE(ZeroResultLookupCost(d),
                  BaselineZeroResultLookupCost(d) + 1e-9)
            << "policy=" << static_cast<int>(policy) << " T=" << t
            << " bpe=" << bits_per_entry;
      }
    }
  }
}

TEST(CostModel, MonkeyLookupCostIndependentOfLevelCountAboveThreshold) {
  // Table 1: with M_filters > M_threshold, Monkey's R is O(e^{-M/N}) —
  // independent of N's effect on L. Grow N (and the budget proportionally):
  // the baseline grows logarithmically while Monkey stays ~flat.
  DesignPoint d = PaperConfig();
  d.filter_bits = 5.0 * d.num_entries;
  const double r_small = ZeroResultLookupCost(d);
  const double rart_small = BaselineZeroResultLookupCost(d);

  DesignPoint big = d;
  big.num_entries *= 1024;  // +5 levels at T=4.
  big.filter_bits = 5.0 * big.num_entries;
  const double r_big = ZeroResultLookupCost(big);
  const double rart_big = BaselineZeroResultLookupCost(big);

  EXPECT_GT(NumLevels(big), NumLevels(d));
  EXPECT_NEAR(r_big, r_small, r_small * 1e-6);     // Monkey: flat.
  EXPECT_GT(rart_big, rart_small * 1.3);           // Baseline: grows.
}

TEST(CostModel, MonkeyLookupCostIndependentOfBufferSize) {
  // Fig. 9 top: above the threshold, R does not depend on M_buffer.
  DesignPoint d = PaperConfig();
  d.filter_bits = 8.0 * d.num_entries;
  const double r1 = ZeroResultLookupCost(d);
  DesignPoint d2 = d;
  d2.buffer_bits *= 256;
  const double r2 = ZeroResultLookupCost(d2);
  EXPECT_NEAR(r1, r2, r1 * 1e-9);

  // The baseline DOES depend on the buffer (through L).
  EXPECT_LT(BaselineZeroResultLookupCost(d2),
            BaselineZeroResultLookupCost(d));
}

TEST(CostModel, LookupCostMonotonicallyDecreasingInFilterMemory) {
  DesignPoint d = PaperConfig();
  double prev_r = 1e100;
  double prev_rart = 1e100;
  for (double bpe = 0.0; bpe <= 16.0; bpe += 0.25) {
    d.filter_bits = bpe * d.num_entries;
    const double r = ZeroResultLookupCost(d);
    const double rart = BaselineZeroResultLookupCost(d);
    EXPECT_LE(r, prev_r + 1e-9) << bpe;
    EXPECT_LE(rart, prev_rart + 1e-9) << bpe;
    prev_r = r;
    prev_rart = rart;
  }
}

TEST(CostModel, CurvesMeetWithNoFilterMemory) {
  // Fig. 7: as M_filters -> 0 both degenerate to the unfiltered LSM-tree
  // (R = number of runs).
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering}) {
    DesignPoint d = PaperConfig();
    d.policy = policy;
    d.filter_bits = 0.0;
    EXPECT_NEAR(ZeroResultLookupCost(d), MaxRuns(d), 1e-9);
    EXPECT_NEAR(BaselineZeroResultLookupCost(d), MaxRuns(d), 1e-9);
  }
}

TEST(CostModel, MemoryThresholdFormula) {
  DesignPoint d = PaperConfig();
  // M_threshold = N/ln(2)^2 * ln(T)/(T-1). At T=2 this is ~1.44 N bits.
  d.size_ratio = 2.0;
  EXPECT_NEAR(MemoryThreshold(d) / d.num_entries, 1.44, 0.01);
  // Above the threshold no level loses its filter; below, some do.
  d.filter_bits = MemoryThreshold(d) * 1.01;
  EXPECT_EQ(UnfilteredLevels(d), 0);
  d.filter_bits = MemoryThreshold(d) * 0.5;
  EXPECT_GE(UnfilteredLevels(d), 1);
  d.filter_bits = 0.0;
  EXPECT_EQ(UnfilteredLevels(d), NumLevels(d));
}

TEST(CostModel, UpdateCostBehaviour) {
  DesignPoint d = PaperConfig();
  // Tiering updates are cheaper than leveling at the same T (Fig. 4).
  DesignPoint tier = d;
  tier.policy = MergePolicy::kTiering;
  EXPECT_LT(UpdateCost(tier), UpdateCost(d));

  // With leveling, increasing T makes updates more expensive; with tiering
  // the per-level cost factor (T-1)/T grows slowly but L shrinks, so the
  // overall cost falls.
  DesignPoint lev_t16 = d;
  lev_t16.size_ratio = 16.0;
  EXPECT_GT(UpdateCost(lev_t16) * NumLevels(d),
            UpdateCost(d) * NumLevels(lev_t16) * 0.99);

  DesignPoint tier_t16 = tier;
  tier_t16.size_ratio = 16.0;
  EXPECT_LT(UpdateCost(tier_t16), UpdateCost(tier));

  // Flash (phi = 2) makes updates 1.5x pricier than disk (phi = 1).
  DesignPoint flash = d;
  flash.write_read_cost_ratio = 2.0;
  EXPECT_NEAR(UpdateCost(flash) / UpdateCost(d), 1.5, 1e-9);
}

TEST(CostModel, LookupVsUpdateTradeoffAcrossT) {
  // Fig. 4: under leveling, raising T lowers R but raises W;
  // under tiering, raising T raises R but lowers W.
  DesignPoint d = PaperConfig();
  d.filter_bits = 5.0 * d.num_entries;

  DesignPoint lev2 = d, lev16 = d;
  lev2.size_ratio = 2.0;
  lev16.size_ratio = 16.0;
  EXPECT_LE(BaselineZeroResultLookupCost(lev16),
            BaselineZeroResultLookupCost(lev2));
  EXPECT_GT(UpdateCost(lev16), UpdateCost(lev2));

  DesignPoint tier2 = d, tier16 = d;
  tier2.policy = tier16.policy = MergePolicy::kTiering;
  tier2.size_ratio = 2.0;
  tier16.size_ratio = 16.0;
  EXPECT_GE(BaselineZeroResultLookupCost(tier16),
            BaselineZeroResultLookupCost(tier2));
  EXPECT_LT(UpdateCost(tier16), UpdateCost(tier2));
}

TEST(CostModel, NonZeroLookupAtLeastOneIo) {
  // Eq. 9: V = R - p_L + 1 >= 1 (the target page must be read).
  for (double bpe : {0.0, 2.0, 10.0}) {
    DesignPoint d = PaperConfig();
    d.filter_bits = bpe * d.num_entries;
    EXPECT_GE(NonZeroResultLookupCost(d), 1.0 - 1e-9);
    EXPECT_GE(BaselineNonZeroResultLookupCost(d), 1.0 - 1e-9);
    EXPECT_LE(NonZeroResultLookupCost(d),
              BaselineNonZeroResultLookupCost(d) + 1.0);
  }
}

TEST(CostModel, RangeLookupScalesWithSelectivity) {
  DesignPoint d = PaperConfig();
  const double q_small = RangeLookupCost(d, 1e-6);
  const double q_large = RangeLookupCost(d, 1e-3);
  EXPECT_GT(q_large, q_small);
  // The selectivity term dominates for large ranges: s*N/B pages.
  EXPECT_NEAR(q_large - q_small,
              (1e-3 - 1e-6) * d.num_entries / d.entries_per_page,
              1.0);
}

TEST(CostModel, ThroughputComposition) {
  DesignPoint d = PaperConfig();
  Workload w;
  w.zero_result_lookups = 0.5;
  w.updates = 0.5;
  const double theta = AverageOperationCost(d, w);
  EXPECT_NEAR(theta, 0.5 * ZeroResultLookupCost(d) + 0.5 * UpdateCost(d),
              1e-12);
  const double tau = Throughput(d, w, 10e-3);
  EXPECT_NEAR(tau, 1.0 / (theta * 10e-3), 1e-6);
  // Monkey's throughput beats the baseline's for the same design.
  EXPECT_GE(tau, 1.0 / (BaselineAverageOperationCost(d, w) * 10e-3) - 1e-9);
}

}  // namespace
}  // namespace monkey
}  // namespace monkeydb
