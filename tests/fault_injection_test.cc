// Failure-injection tests: write faults during flush/compaction and read
// faults during lookups must surface as Status errors, and previously
// committed data must survive a reopen after the fault clears.

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "lsm/db.h"

namespace monkeydb {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : base_env_(NewMemEnv()), env_(base_env_.get()) {}

  DbOptions MakeOptions() {
    DbOptions options;
    options.env = &env_;
    options.buffer_size_bytes = 8 << 10;
    return options;
  }

  std::unique_ptr<Env> base_env_;
  FaultInjectionEnv env_;
};

TEST_F(FaultInjectionTest, EnvFaultMachinery) {
  env_.ScheduleWriteFault(2);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());  // Op 1.
  ASSERT_TRUE(file->Append("x").ok());                  // Op 2.
  EXPECT_TRUE(file->Append("y").IsIoError());           // Op 3: fails.
  EXPECT_TRUE(file->Sync().IsIoError());                // Keeps failing.
  env_.ResetFaults();
  EXPECT_TRUE(file->Append("z").ok());
  EXPECT_GE(env_.injected_failures(), 2u);
}

TEST_F(FaultInjectionTest, WriteFaultSurfacesDuringFlush) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;

  // Arm a fault far enough out that Open/WAL writes pass, then write until
  // the flush path hits it.
  env_.ScheduleWriteFault(300);
  Status s;
  int i = 0;
  for (; i < 20000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string payload = std::string(64, 'v');
    s = db->Put(wo, key, payload);
    if (!s.ok()) break;
  }
  EXPECT_TRUE(s.IsIoError()) << "fault never surfaced after " << i << " puts";
  env_.ResetFaults();
}

TEST_F(FaultInjectionTest, CommittedDataSurvivesFaultAndReopen) {
  // Write a first tranche, flush it cleanly, then hit a fault, then reopen.
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
    WriteOptions wo;
    for (int i = 0; i < 1000; i++) {
      const std::string key = "stable" + std::to_string(i);
      ASSERT_TRUE(
          db->Put(wo, key, "v").ok());
    }
    ASSERT_TRUE(db->Flush().ok());

    env_.ScheduleWriteFault(50);
    Status s;
    for (int i = 0; i < 20000 && s.ok(); i++) {
      const std::string key = "risky" + std::to_string(i);
      const std::string payload = std::string(64, 'v');
      s = db->Put(wo, key, payload);
    }
    EXPECT_FALSE(s.ok());
    env_.ResetFaults();
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 1000; i += 37) {
    const std::string key = "stable" + std::to_string(i);
    EXPECT_TRUE(db->Get(ro, key, &value).ok())
        << i;
  }
}

TEST_F(FaultInjectionTest, ReadFaultSurfacesOnLookup) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  // No filters so every lookup must touch disk.
  for (int i = 0; i < 2000; i++) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  env_.SetReadFaults(true);
  std::string value;
  Status s = db->Get(ReadOptions(), "key500", &value);
  EXPECT_TRUE(s.IsIoError());
  env_.ResetFaults();
  EXPECT_TRUE(db->Get(ReadOptions(), "key500", &value).ok());
}

TEST_F(FaultInjectionTest, DbRemainsUsableAfterTransientFault) {
  std::unique_ptr<DB> db;
  DbOptions options = MakeOptions();
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  env_.ScheduleWriteFault(100);
  Status s;
  for (int i = 0; i < 20000 && s.ok(); i++) {
    const std::string key = "k" + std::to_string(i);
    const std::string payload = std::string(32, 'v');
    s = db->Put(wo, key, payload);
  }
  ASSERT_FALSE(s.ok());
  env_.ResetFaults();

  // The engine reports the error but does not crash; a reopen gives a
  // consistent view again.
  db.reset();
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  ASSERT_TRUE(db->Put(wo, "after_fault", "ok").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "after_fault", &value).ok());
  EXPECT_EQ(value, "ok");
}

}  // namespace
}  // namespace monkeydb
