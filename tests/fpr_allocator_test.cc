// Tests for Monkey's FPR allocation: the closed forms (Eqs. 15-18), their
// optimality against brute-force search, and the Appendix C autotuner.

#include "monkey/fpr_allocator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "monkey/cost_model.h"
#include "util/random.h"

namespace monkeydb {
namespace monkey {
namespace {

struct AllocParam {
  MergePolicy policy;
  double t;
  int levels;
};

class OptimalFprTest : public ::testing::TestWithParam<AllocParam> {};

TEST_P(OptimalFprTest, SumOfFprsEqualsTargetR) {
  const auto& p = GetParam();
  const double runs_per_level =
      p.policy == MergePolicy::kTiering ? p.t - 1.0 : 1.0;
  for (double r : {0.1, 0.5, 1.0, 1.5, 2.5}) {
    if (r > p.levels * runs_per_level) continue;
    FprVector fprs = OptimalFprsForLookupCost(p.policy, p.t, p.levels, r);
    ASSERT_EQ(static_cast<int>(fprs.size()), p.levels);
    EXPECT_NEAR(LookupCostForFprs(p.policy, p.t, fprs), r, 1e-9)
        << "r=" << r;
  }
}

TEST_P(OptimalFprTest, FprsIncreaseGeometricallyWithLevel) {
  const auto& p = GetParam();
  // Small R so every level keeps a filter (no saturation at 1).
  FprVector fprs = OptimalFprsForLookupCost(p.policy, p.t, p.levels, 0.2);
  for (int i = 1; i < p.levels; i++) {
    ASSERT_LT(fprs[i - 1], fprs[i]);
    // Optimal FPR at level i is T x the FPR at level i-1 (Sec. 4.1).
    EXPECT_NEAR(fprs[i] / fprs[i - 1], p.t, p.t * 1e-6);
  }
}

TEST_P(OptimalFprTest, LargeRSaturatesDeepLevelsFirst) {
  const auto& p = GetParam();
  if (p.levels < 3) return;
  const double runs_per_level =
      p.policy == MergePolicy::kTiering ? p.t - 1.0 : 1.0;
  // R large enough that at least one deep level loses its filter.
  const double r = 1.0 + 2.0 * runs_per_level;
  FprVector fprs = OptimalFprsForLookupCost(p.policy, p.t, p.levels, r);
  EXPECT_DOUBLE_EQ(fprs[p.levels - 1], 1.0);
  // FPR = 1 region is a suffix.
  bool seen_one = false;
  for (double fpr : fprs) {
    if (seen_one) {
      EXPECT_DOUBLE_EQ(fpr, 1.0);
    }
    if (fpr == 1.0) seen_one = true;
  }
  EXPECT_NEAR(LookupCostForFprs(p.policy, p.t, fprs), r, 1e-9);
}

// The heart of the paper: among allocations with the same lookup cost R,
// Monkey's uses the least memory. Compare against random alternatives.
TEST_P(OptimalFprTest, MinimizesMemoryAmongEqualCostAllocations) {
  const auto& p = GetParam();
  const double n = 1e7;
  const double r = 0.5;
  FprVector optimal = OptimalFprsForLookupCost(p.policy, p.t, p.levels, r);
  const double optimal_memory =
      FilterMemoryForFprs(p.policy, p.t, n, optimal);

  Random rng(0xF00D);
  const double per_level_target = LookupCostForFprs(p.policy, p.t, optimal);
  for (int trial = 0; trial < 200; trial++) {
    // Random perturbation preserving the sum of FPRs.
    FprVector alt = optimal;
    const int a = static_cast<int>(rng.Uniform(p.levels));
    const int b = static_cast<int>(rng.Uniform(p.levels));
    if (a == b) continue;
    const double delta =
        (rng.NextDouble() - 0.5) * 0.5 * std::min(alt[a], alt[b]);
    if (alt[a] + delta >= 1.0 || alt[a] + delta <= 0 ||
        alt[b] - delta >= 1.0 || alt[b] - delta <= 0) {
      continue;
    }
    alt[a] += delta;
    alt[b] -= delta;
    ASSERT_NEAR(LookupCostForFprs(p.policy, p.t, alt), per_level_target,
                1e-6);
    EXPECT_GE(FilterMemoryForFprs(p.policy, p.t, n, alt),
              optimal_memory * (1 - 1e-9))
        << "trial " << trial;
  }
}

TEST_P(OptimalFprTest, MemoryDrivenAllocationConsistentWithCostModel) {
  const auto& p = GetParam();
  const double n = 1 << 20;
  for (double bits_per_entry : {1.0, 3.0, 5.0, 10.0}) {
    FprVector fprs = OptimalFprsForMemory(p.policy, p.t, p.levels, n,
                                          bits_per_entry * n);
    const double r = LookupCostForFprs(p.policy, p.t, fprs);
    // Rebuild the memory from the FPRs: must not exceed the budget by more
    // than the closed-form approximation error (~the deepest level's share).
    const double memory = FilterMemoryForFprs(p.policy, p.t, n, fprs);
    EXPECT_LT(memory, bits_per_entry * n * 1.35)
        << "bpe=" << bits_per_entry << " R=" << r;
    EXPECT_GT(r, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptimalFprTest,
    ::testing::Values(AllocParam{MergePolicy::kLeveling, 2.0, 5},
                      AllocParam{MergePolicy::kLeveling, 4.0, 6},
                      AllocParam{MergePolicy::kLeveling, 10.0, 4},
                      AllocParam{MergePolicy::kLeveling, 3.0, 1},
                      AllocParam{MergePolicy::kTiering, 2.0, 5},
                      AllocParam{MergePolicy::kTiering, 4.0, 6},
                      AllocParam{MergePolicy::kTiering, 10.0, 3}));

// --- Appendix C autotuner ---

TEST(AutotuneFilters, ConvergesToClosedFormOnGeometricRuns) {
  // Runs with the ideal geometry (leveling, T=4, 5 levels).
  const double t = 4.0;
  const int levels = 5;
  std::vector<RunFilterInfo> runs(levels);
  uint64_t entries = 1000;
  for (int i = 0; i < levels; i++) {
    runs[i].entries = entries;
    entries *= static_cast<uint64_t>(t);
  }
  double total_entries = 0;
  for (const auto& run : runs) total_entries += run.entries;

  const double budget_bits = 8.0 * total_entries;
  const double autotuned_r = AutotuneFilters(budget_bits, &runs);

  // Closed form with the same budget.
  FprVector fprs = OptimalFprsForMemory(MergePolicy::kLeveling, t, levels,
                                        total_entries, budget_bits);
  const double closed_form_r =
      LookupCostForFprs(MergePolicy::kLeveling, t, fprs);

  EXPECT_NEAR(autotuned_r, closed_form_r, closed_form_r * 0.25 + 1e-3);

  // The iterative solution must assign more bits-per-entry to smaller runs.
  for (int i = 0; i + 1 < levels; i++) {
    const double bpe_small = runs[i].bits / runs[i].entries;
    const double bpe_large = runs[i + 1].bits / runs[i + 1].entries;
    EXPECT_GE(bpe_small, bpe_large - 1e-6) << i;
  }
}

TEST(AutotuneFilters, BeatsUniformAllocationOnSkewedRuns) {
  // Variable entry sizes -> irregular run sizes: the case Appendix C is
  // for. Compare the autotuned R with the uniform-bits-per-entry R.
  std::vector<RunFilterInfo> runs = {
      {500, 0}, {700, 0}, {9000, 0}, {200000, 0}, {1500000, 0}};
  double total_entries = 0;
  for (const auto& run : runs) total_entries += run.entries;
  const double budget = 6.0 * total_entries;

  double uniform_r = 0;
  for (const auto& run : runs) {
    const double bits = budget * (run.entries / total_entries);
    uniform_r += std::exp(-(bits / run.entries) * 0.4804530139182014);
  }

  std::vector<RunFilterInfo> tuned = runs;
  const double autotuned_r = AutotuneFilters(budget, &tuned);
  EXPECT_LT(autotuned_r, uniform_r);

  // Budget conservation: assigned bits never exceed the budget.
  double assigned = 0;
  for (const auto& run : tuned) assigned += run.bits;
  EXPECT_LE(assigned, budget * (1 + 1e-9));
}

TEST(AutotuneFilters, EmptyAndSingleRunEdgeCases) {
  std::vector<RunFilterInfo> none;
  EXPECT_DOUBLE_EQ(AutotuneFilters(1000, &none), 0.0);

  std::vector<RunFilterInfo> one = {{1000, 0}};
  const double r = AutotuneFilters(10000, &one);
  EXPECT_NEAR(r, std::exp(-(10000.0 / 1000.0) * 0.4804530139182014), 1e-6);
  EXPECT_DOUBLE_EQ(one[0].bits, 10000.0);
}

// --- The engine-facing policy ---

TEST(MonkeyFprPolicy, AssignsSmallerFprToShallowerLevels) {
  MonkeyFprPolicy policy;
  LsmShape shape;
  shape.total_entries = 1 << 20;
  shape.buffer_entries = 1 << 10;
  shape.size_ratio = 4.0;
  shape.num_levels = 5;
  shape.merge_policy = MergePolicy::kLeveling;
  shape.bits_per_entry_budget = 5.0;

  double prev = 0;
  for (int level = 1; level <= 5; level++) {
    const double fpr = policy.RunFpr(shape, level);
    EXPECT_GT(fpr, 0.0);
    EXPECT_LE(fpr, 1.0);
    EXPECT_GT(fpr, prev) << "level " << level;
    prev = fpr;
  }
}

TEST(MonkeyFprPolicy, UsesLessTotalMemoryThanUniformForSameR) {
  // For the same total filter budget, the resulting sum of FPRs (lookup
  // cost) must be lower than uniform allocation (Fig. 7).
  MonkeyFprPolicy policy;
  LsmShape shape;
  shape.total_entries = 1 << 22;
  shape.size_ratio = 4.0;
  shape.num_levels = 6;
  shape.merge_policy = MergePolicy::kLeveling;
  shape.bits_per_entry_budget = 5.0;

  double monkey_r = 0;
  const double uniform_fpr = std::exp(-5.0 * 0.4804530139182014);
  double uniform_r = 0;
  for (int level = 1; level <= 6; level++) {
    monkey_r += policy.RunFpr(shape, level);
    uniform_r += uniform_fpr;
  }
  EXPECT_LT(monkey_r, uniform_r);
}

}  // namespace
}  // namespace monkey
}  // namespace monkeydb
