// Positive control for the thread-safety try_compile gate: correctly locked
// access to a GUARDED_BY field. Must compile under
// -Wthread-safety -Werror=thread-safety. If this file fails to build, the
// harness (include paths, flags) is broken — not the analysis.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Increment() EXCLUDES(mu_) {
    monkeydb::MutexLock lock(mu_);
    value_++;
  }

  int value() EXCLUDES(mu_) {
    monkeydb::MutexLock lock(mu_);
    return value_;
  }

 private:
  monkeydb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Increment();
  return g.value() == 1 ? 0 : 1;
}
