// Negative check for the thread-safety try_compile gate: an unannotated
// (lockless) write to a GUARDED_BY field. This file MUST FAIL to compile
// under -Wthread-safety -Werror=thread-safety; if it ever builds, the
// analysis gate is dead and tests/CMakeLists.txt raises a FATAL_ERROR.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void BrokenIncrement() {
    value_++;  // Write without mu_ held: -Wthread-safety rejects this.
  }

 private:
  monkeydb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.BrokenIncrement();
  return 0;
}
