// Bloom filter tests: no false negatives (ever), empirical FPR tracking the
// Eq. 2 prediction across a parameterized bits-per-key sweep, and the
// FPR <-> bits math.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_math.h"
#include "util/random.h"

namespace monkeydb {
namespace {

std::string Key(int i) { return "key_" + std::to_string(i); }

TEST(BloomMath, Equation2RoundTrip) {
  // FPR(bits_per_entry) and its inverse must compose to identity.
  for (double fpr : {0.5, 0.1, 0.01, 0.001, 1e-6}) {
    const double bpe = bloom::BitsPerEntryForFpr(fpr);
    EXPECT_NEAR(bloom::FalsePositiveRate(bpe), fpr, fpr * 1e-9);
  }
  EXPECT_DOUBLE_EQ(bloom::FalsePositiveRate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(bloom::BitsPerEntryForFpr(1.0), 0.0);
}

TEST(BloomMath, TenBitsIsAboutOnePercent) {
  // The paper: "All implementations use 10 bits per entry ... the
  // corresponding false positive rate is ~1%".
  EXPECT_NEAR(bloom::FalsePositiveRate(10.0), 0.0082, 0.001);
}

TEST(BloomMath, OptimalProbes) {
  EXPECT_EQ(bloom::OptimalNumProbes(10.0), 7);  // 10·ln2 ≈ 6.93.
  EXPECT_EQ(bloom::OptimalNumProbes(1.0), 1);
  EXPECT_EQ(bloom::OptimalNumProbes(100.0), 30);  // Clamped.
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilterBuilder builder;
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(8.0);
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    EXPECT_TRUE(BloomFilterReader::MayContain(filter, key)) << i;
  }
}

TEST(BloomFilter, EmptyFilterAlwaysPositive) {
  BloomFilterBuilder builder;
  for (int i = 0; i < 100; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(0.0);
  EXPECT_TRUE(filter.empty());
  EXPECT_TRUE(BloomFilterReader::MayContain(filter, "anything"));
  EXPECT_EQ(BloomFilterReader::SizeBits(filter), 0u);
}

TEST(BloomFilter, NoKeysProducesEmptyFilter) {
  BloomFilterBuilder builder;
  const std::string filter = builder.Finish(10.0);
  EXPECT_TRUE(BloomFilterReader::MayContain(filter, "x"));
}

TEST(BloomFilter, SizeMatchesBudget) {
  BloomFilterBuilder builder;
  const int n = 4096;
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(10.0);
  const uint64_t bits = BloomFilterReader::SizeBits(filter);
  EXPECT_NEAR(static_cast<double>(bits), 10.0 * n, 8.0);  // Byte rounding.
}

// Parameterized sweep: the empirical FPR must track Eq. 2 within sampling
// noise across the bits-per-key range the paper explores (Fig. 11C).
class BloomFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFprSweep, EmpiricalFprMatchesTheory) {
  const double bits_per_key = GetParam();
  BloomFilterBuilder builder;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(bits_per_key);

  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; i++) {
    const std::string key = Key(n + i);
    if (BloomFilterReader::MayContain(filter, key)) false_positives++;
  }
  const double empirical = static_cast<double>(false_positives) / probes;
  const double theoretical = bloom::FalsePositiveRate(bits_per_key);
  // Double hashing + integer k costs a little accuracy vs the ideal; allow
  // 40% relative + absolute sampling slack.
  EXPECT_LE(std::abs(empirical - theoretical),
            0.4 * theoretical + 0.004)
      << "bits/key=" << bits_per_key << " empirical=" << empirical
      << " theoretical=" << theoretical;
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprSweep,
                         ::testing::Values(2.0, 4.0, 5.0, 8.0, 10.0, 14.0));

TEST(BloomFilter, FinishForFprHitsTarget) {
  for (double target : {0.5, 0.1, 0.01}) {
    BloomFilterBuilder builder;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
      const std::string key = Key(i);
      builder.AddKey(key);
    }
    const std::string filter = builder.FinishForFpr(target);

    int fp = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; i++) {
      const std::string key = Key(n + i);
      if (BloomFilterReader::MayContain(filter, key)) fp++;
    }
    const double empirical = static_cast<double>(fp) / probes;
    EXPECT_LE(std::abs(empirical - target), 0.4 * target + 0.004)
        << "target=" << target;
  }
}

TEST(BloomFilter, FprOneMeansNoFilter) {
  BloomFilterBuilder builder;
  for (int i = 0; i < 100; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  EXPECT_TRUE(builder.FinishForFpr(1.0).empty());
}

TEST(BloomFilter, TinyRunStillGetsFloorFilter) {
  BloomFilterBuilder builder;
  builder.AddKey("only_key");
  const std::string filter = builder.Finish(5.0);
  // 5 bits would be useless; the builder floors at 64 bits.
  EXPECT_GE(BloomFilterReader::SizeBits(filter), 64u);
  EXPECT_TRUE(BloomFilterReader::MayContain(filter, "only_key"));
  EXPECT_FALSE(BloomFilterReader::MayContain(filter, "other_key"));
}

TEST(BloomFilter, BuilderResetsAfterFinish) {
  BloomFilterBuilder builder;
  builder.AddKey("a");
  builder.Finish(10.0);
  EXPECT_EQ(builder.num_keys(), 0u);
  builder.AddKey("b");
  const std::string filter = builder.Finish(10.0);
  EXPECT_TRUE(BloomFilterReader::MayContain(filter, "b"));
}

}  // namespace
}  // namespace monkeydb
