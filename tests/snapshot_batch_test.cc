// Tests for atomic WriteBatch and snapshot (point-in-time) reads,
// including compaction's snapshot-aware version retention.

#include <gtest/gtest.h>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

class SnapshotBatchTest : public ::testing::Test {
 protected:
  SnapshotBatchTest() : env_(NewMemEnv()) {
    DbOptions options;
    options.env = env_.get();
    options.buffer_size_bytes = 8 << 10;  // Small: frequent compactions.
    options.fpr_policy = monkey::NewMonkeyFprPolicy();
    EXPECT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DB> db_;
  WriteOptions wo_;
  ReadOptions ro_;
};

TEST_F(SnapshotBatchTest, BatchAppliesAtomically) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  EXPECT_EQ(batch.count(), 4u);
  ASSERT_TRUE(db_->Write(wo_, batch).ok());

  std::string value;
  EXPECT_TRUE(db_->Get(ro_, "a", &value).IsNotFound());  // Deleted in-batch.
  ASSERT_TRUE(db_->Get(ro_, "b", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(db_->Get(ro_, "c", &value).ok());
  EXPECT_EQ(value, "3");
}

TEST_F(SnapshotBatchTest, EmptyBatchIsNoOp) {
  WriteBatch batch;
  EXPECT_TRUE(db_->Write(wo_, batch).ok());
}

TEST_F(SnapshotBatchTest, BatchSurvivesCrashAtomically) {
  WriteBatch batch;
  for (int i = 0; i < 100; i++) {
    const std::string key = "batch_key" + std::to_string(i);
    batch.Put(key, "v");
  }
  ASSERT_TRUE(db_->Write(wo_, batch).ok());
  db_.reset();  // "Crash" (WAL not flushed into a run).

  DbOptions options;
  options.env = env_.get();
  std::unique_ptr<DB> reopened;
  ASSERT_TRUE(DB::Open(options, "/db", &reopened).ok());
  std::string value;
  for (int i = 0; i < 100; i++) {
    const std::string key = "batch_key" + std::to_string(i);
    EXPECT_TRUE(
        reopened->Get(ro_, key, &value).ok())
        << i;
  }
}

TEST_F(SnapshotBatchTest, SnapshotSeesOldValue) {
  ASSERT_TRUE(db_->Put(wo_, "k", "old").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(wo_, "k", "new").ok());
  ASSERT_TRUE(db_->Put(wo_, "fresh", "x").ok());

  std::string value;
  ASSERT_TRUE(db_->Get(ro_, "k", &value).ok());
  EXPECT_EQ(value, "new");

  ReadOptions snap_ro;
  snap_ro.snapshot = snap;
  ASSERT_TRUE(db_->Get(snap_ro, "k", &value).ok());
  EXPECT_EQ(value, "old");
  EXPECT_TRUE(db_->Get(snap_ro, "fresh", &value).IsNotFound());

  db_->ReleaseSnapshot(snap);
}

TEST_F(SnapshotBatchTest, SnapshotSeesDeletedKey) {
  ASSERT_TRUE(db_->Put(wo_, "doomed", "alive").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Delete(wo_, "doomed").ok());

  std::string value;
  EXPECT_TRUE(db_->Get(ro_, "doomed", &value).IsNotFound());
  ReadOptions snap_ro;
  snap_ro.snapshot = snap;
  ASSERT_TRUE(db_->Get(snap_ro, "doomed", &value).ok());
  EXPECT_EQ(value, "alive");
  db_->ReleaseSnapshot(snap);
}

TEST_F(SnapshotBatchTest, SnapshotSurvivesCompactions) {
  // Pin a snapshot, then overwrite heavily so compactions run many times.
  // The pinned versions must survive every merge.
  for (int i = 0; i < 200; i++) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(
        db_->Put(wo_, key, "generation0").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();

  Random rng(3);
  for (int gen = 1; gen <= 20; gen++) {
    for (int i = 0; i < 200; i++) {
      const std::string key = "key" + std::to_string(i);
      const std::string val = "generation" + std::to_string(gen);
      ASSERT_TRUE(db_->Put(wo_, key,
                           val)
                      .ok());
    }
  }
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_GT(db_->GetStats().merges, 0u);

  ReadOptions snap_ro;
  snap_ro.snapshot = snap;
  std::string value;
  for (int i = 0; i < 200; i += 7) {
    const std::string key3 = "key" + std::to_string(i);
    ASSERT_TRUE(db_->Get(snap_ro, key3, &value).ok())
        << i;
    EXPECT_EQ(value, "generation0") << i;
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(db_->Get(ro_, key, &value).ok());
    EXPECT_EQ(value, "generation20") << i;
  }
  db_->ReleaseSnapshot(snap);

  // After release, a full compaction is free to discard the old versions.
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Get(ro_, "key7", &value).ok());
  EXPECT_EQ(value, "generation20");
  EXPECT_LE(db_->GetStats().total_disk_entries, 220u);
}

TEST_F(SnapshotBatchTest, SnapshotIteratorIsConsistent) {
  for (int i = 0; i < 50; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    ASSERT_TRUE(db_->Put(wo_, buf, "v0").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();

  // Mutate: delete evens, rewrite odds, add new keys.
  for (int i = 0; i < 50; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    if (i % 2 == 0) {
      ASSERT_TRUE(db_->Delete(wo_, buf).ok());
    } else {
      ASSERT_TRUE(db_->Put(wo_, buf, "v1").ok());
    }
  }
  ASSERT_TRUE(db_->Put(wo_, "zzz_new", "x").ok());

  ReadOptions snap_ro;
  snap_ro.snapshot = snap;
  auto iter = db_->NewIterator(snap_ro);
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(iter->value().ToString(), "v0") << iter->key().ToString();
    EXPECT_NE(iter->key().ToString(), "zzz_new");
    count++;
  }
  EXPECT_EQ(count, 50);
  db_->ReleaseSnapshot(snap);

  // Latest view: 25 odd keys + the new one.
  auto latest = db_->NewIterator(ro_);
  count = 0;
  for (latest->SeekToFirst(); latest->Valid(); latest->Next()) count++;
  EXPECT_EQ(count, 26);
}

TEST_F(SnapshotBatchTest, CompactAllRespectsActiveSnapshot) {
  ASSERT_TRUE(db_->Put(wo_, "k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(wo_, "k", "v2").ok());
  ASSERT_TRUE(db_->CompactAll().ok());

  ReadOptions snap_ro;
  snap_ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(snap_ro, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  db_->ReleaseSnapshot(snap);
}

}  // namespace
}  // namespace monkeydb
