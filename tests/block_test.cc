// Data-block builder/iterator tests (prefix compression, restarts, seeks,
// corruption handling).

#include "sstable/block.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace monkeydb {
namespace {

// Helper: internal keys for plain string user keys with fixed sequence.
std::string IKey(const std::string& user_key, uint64_t seq = 100) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, ValueType::kValue);
  return k;
}

class BlockTest : public ::testing::TestWithParam<int> {
 protected:
  BlockTest() : comparator_(BytewiseComparator()) {}

  std::unique_ptr<Block> Build(
      const std::vector<std::pair<std::string, std::string>>& entries) {
    BlockBuilder builder(GetParam());
    for (const auto& [key, value] : entries) builder.Add(key, value);
    Slice payload = builder.Finish();
    return std::make_unique<Block>(
        std::make_shared<const std::string>(payload.ToString()));
  }

  InternalKeyComparator comparator_;
};

TEST_P(BlockTest, RoundTripInOrder) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    entries.push_back({IKey(buf), "value" + std::to_string(i)});
  }
  auto block = Build(entries);
  ASSERT_TRUE(block->ok());

  auto iter = block->NewIterator(&comparator_);
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(iter->key().ToString(), entries[i].first);
    EXPECT_EQ(iter->value().ToString(), entries[i].second);
  }
  EXPECT_EQ(i, entries.size());
  EXPECT_TRUE(iter->status().ok());
}

TEST_P(BlockTest, SeekFindsFirstGreaterOrEqual) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i += 2) {  // Even keys only.
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    entries.push_back({IKey(buf), std::to_string(i)});
  }
  auto block = Build(entries);
  auto iter = block->NewIterator(&comparator_);

  // Seek to a present key.
  const std::string present = IKey("key0042");
  iter->Seek(present);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "42");

  // Seek to an absent (odd) key lands on the next even key.
  const std::string absent = IKey("key0041");
  iter->Seek(absent);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "42");

  // Seek before the first.
  const std::string before_first = IKey("aaa");
  iter->Seek(before_first);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "0");

  // Seek past the last.
  const std::string past_last = IKey("zzz");
  iter->Seek(past_last);
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BlockTest, SeekToLastAndPrev) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 37; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%03d", i);
    entries.push_back({IKey(buf), std::to_string(i)});
  }
  auto block = Build(entries);
  auto iter = block->NewIterator(&comparator_);

  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "36");

  // Walk the whole block backwards.
  for (int i = 35; i >= 0; i--) {
    iter->Prev();
    ASSERT_TRUE(iter->Valid()) << i;
    EXPECT_EQ(iter->value().ToString(), std::to_string(i));
  }
  iter->Prev();
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BlockTest, EmptyBlock) {
  auto block = Build({});
  ASSERT_TRUE(block->ok());
  auto iter = block->NewIterator(&comparator_);
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  const std::string ikey = IKey("x");
  iter->Seek(ikey);
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BlockTest, PrefixCompressionSavesSpace) {
  // Keys sharing long prefixes should compress well when the restart
  // interval allows sharing.
  BlockBuilder with_sharing(16);
  BlockBuilder no_sharing(1);
  for (int i = 0; i < 64; i++) {
    char buf[64];
    snprintf(buf, sizeof(buf), "a_very_long_common_prefix_%04d", i);
    std::string key = IKey(buf);
    with_sharing.Add(key, "v");
    no_sharing.Add(key, "v");
  }
  EXPECT_LT(with_sharing.Finish().size(), no_sharing.Finish().size());
}

TEST_P(BlockTest, CorruptedBlockReportsError) {
  auto block = std::make_unique<Block>(
      std::make_shared<const std::string>("not a block"));
  // Either the block parses as malformed or its iterator errors.
  if (block->ok()) {
    auto iter = block->NewIterator(&comparator_);
    iter->SeekToFirst();
    // A garbage block must not yield entries silently *and* report OK with
    // valid state beyond its data.
    while (iter->Valid()) iter->Next();
    SUCCEED();
  } else {
    auto iter = block->NewIterator(&comparator_);
    EXPECT_FALSE(iter->Valid());
    EXPECT_FALSE(iter->status().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockTest,
                         ::testing::Values(1, 2, 16, 128));

}  // namespace
}  // namespace monkeydb
