// Thread-local PerfContext / IOStatsContext: the per-operation breakdown
// must reconcile exactly with the engine-wide DbStats counters, and a
// zero-result Get's probe accounting must sum the way the paper's Eq. 3
// says it does — every run consulted either answers from its Bloom filter
// or costs one block access that turns out to be a false positive.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "obs/perf_context.h"

namespace monkeydb {
namespace {

class PerfContextTest : public ::testing::Test {
 protected:
  PerfContextTest()
      : base_env_(NewMemEnv()),
        env_(base_env_.get(), &io_stats_, kPageSize) {}

  ~PerfContextTest() override {
    // The perf level is sticky per thread; never leak it into other tests.
    SetPerfLevel(PerfLevel::kDisabled);
  }

  void OpenAndFill() {
    DbOptions options;
    options.env = &env_;
    options.buffer_size_bytes = 16 << 10;
    options.bits_per_entry = 5.0;
    options.page_size = kPageSize;
    options.expected_entries = kNumKeys;
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
    WriteOptions wo;
    const std::string value(48, 'v');
    for (int i = 0; i < kNumKeys; i++) {
      const std::string key = Key(i);
      ASSERT_TRUE(db_->Put(wo, key, value).ok());
    }
    // Empty the buffer so lookups exercise only the disk levels.
    ASSERT_TRUE(db_->Flush().ok());
  }

  static std::string Key(int i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }
  // Absent but inside the key range, so only Bloom filters can prune.
  static std::string MissingKey(int i) { return Key(i) + "x"; }

  static constexpr int kNumKeys = 4000;
  static constexpr size_t kPageSize = 4096;

  std::unique_ptr<Env> base_env_;
  IoStats io_stats_;
  CountingEnv env_;
  std::unique_ptr<DB> db_;
};

TEST_F(PerfContextTest, DisabledLevelCountsNothing) {
  OpenAndFill();
  ASSERT_EQ(GetPerfLevel(), PerfLevel::kDisabled);
  GetPerfContext()->Reset();
  GetIOStatsContext()->Reset();
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 50; i++) {
    const std::string missing_key = MissingKey(i);
    EXPECT_TRUE(db_->Get(ro, missing_key, &value).IsNotFound());
  }
  const PerfContext* pc = GetPerfContext();
  EXPECT_EQ(pc->get_count, 0u);
  EXPECT_EQ(pc->filter_probes, 0u);
  EXPECT_EQ(pc->runs_probed, 0u);
  EXPECT_EQ(GetIOStatsContext()->read_calls, 0u);
}

TEST_F(PerfContextTest, ZeroResultGetSumsToEq3Accounting) {
  OpenAndFill();
  const DbStats before = db_->GetStats();
  ASSERT_GT(before.total_runs, 1u);

  SetPerfLevel(PerfLevel::kCounts);
  GetPerfContext()->Reset();
  constexpr int kLookups = 300;
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < kLookups; i++) {
    const std::string missing_key = MissingKey(i * 7);
    EXPECT_TRUE(db_->Get(ro, missing_key, &value).IsNotFound());
  }
  const PerfContext* pc = GetPerfContext();
  const DbStats after = db_->GetStats();

  EXPECT_EQ(pc->get_count, static_cast<uint64_t>(kLookups));
  EXPECT_EQ(pc->memtable_hits, 0u);

  // Eq. 3: a zero-result lookup consults every run in the tree; each
  // consultation is a Bloom probe that either answers "absent" or lets a
  // block access through that finds nothing (a false positive).
  EXPECT_EQ(pc->filter_probes,
            static_cast<uint64_t>(kLookups) * before.total_runs);
  EXPECT_EQ(pc->filter_probes,
            pc->filter_negatives + pc->bloom_false_positives);
  // Every probed run (= block actually accessed) was a false positive,
  // and it cost exactly one fence-pointer search and one data block.
  EXPECT_EQ(pc->runs_probed, pc->bloom_false_positives);
  EXPECT_EQ(pc->fence_seeks, pc->bloom_false_positives);
  EXPECT_EQ(pc->blocks_read_from_cache + pc->blocks_read_from_disk,
            pc->bloom_false_positives);
  // With bits_per_entry = 5 the tree-wide FPR is far from 0 and from 1:
  // both sides of the split must actually occur.
  EXPECT_GT(pc->filter_negatives, 0u);
  EXPECT_GT(pc->bloom_false_positives, 0u);

  // Per-level attribution folds back to the totals.
  uint64_t fp_sum = 0, neg_sum = 0, probed_sum = 0;
  for (int l = 0; l < PerfContext::kMaxLevels; l++) {
    fp_sum += pc->false_positives_per_level[l];
    neg_sum += pc->filter_negatives_per_level[l];
    probed_sum += pc->runs_probed_per_level[l];
  }
  EXPECT_EQ(fp_sum, pc->bloom_false_positives);
  EXPECT_EQ(neg_sum, pc->filter_negatives);
  EXPECT_EQ(probed_sum, pc->runs_probed);

  // The thread-local breakdown and the engine-wide counters tell one
  // story: this thread was the only traffic source.
  EXPECT_EQ(after.gets - before.gets, static_cast<uint64_t>(kLookups));
  EXPECT_EQ(after.gets_not_found - before.gets_not_found,
            static_cast<uint64_t>(kLookups));
  EXPECT_EQ(after.runs_probed - before.runs_probed, pc->runs_probed);
  EXPECT_EQ(after.filter_negatives - before.filter_negatives,
            pc->filter_negatives);
  EXPECT_EQ(after.false_positives - before.false_positives,
            pc->bloom_false_positives);
}

TEST_F(PerfContextTest, ExistingKeyGetStopsAtResolution) {
  OpenAndFill();
  SetPerfLevel(PerfLevel::kCounts);
  GetPerfContext()->Reset();
  ReadOptions ro;
  std::string value;
  constexpr int kLookups = 200;
  for (int i = 0; i < kLookups; i++) {
    const std::string key = Key((i * 13) % kNumKeys);
    ASSERT_TRUE(db_->Get(ro, key, &value).ok());
  }
  const PerfContext* pc = GetPerfContext();
  // Each hit ends at the run holding the key: exactly one probed run
  // terminates the lookup, plus false positives along the way.
  EXPECT_EQ(pc->runs_probed,
            static_cast<uint64_t>(kLookups) + pc->bloom_false_positives);
  EXPECT_GE(pc->filter_probes, pc->runs_probed);
  EXPECT_GT(pc->block_bytes_read, 0u);
}

TEST_F(PerfContextTest, CountsLevelNeverReadsTheClock) {
  OpenAndFill();
  SetPerfLevel(PerfLevel::kCounts);
  GetPerfContext()->Reset();
  GetIOStatsContext()->Reset();
  ReadOptions ro;
  std::string value;
  const std::string key = Key(1);
  ASSERT_TRUE(db_->Get(ro, key, &value).ok());
  const PerfContext* pc = GetPerfContext();
  EXPECT_GT(pc->get_count, 0u);
  EXPECT_EQ(pc->get_nanos, 0u);
  EXPECT_EQ(pc->memtable_lookup_nanos, 0u);
  EXPECT_EQ(pc->filter_probe_nanos, 0u);
  EXPECT_EQ(pc->block_read_nanos, 0u);
  EXPECT_EQ(GetIOStatsContext()->read_nanos, 0u);
}

TEST_F(PerfContextTest, TimingLevelAttributesStages) {
  OpenAndFill();
  SetPerfLevel(PerfLevel::kCountsAndTime);
  GetPerfContext()->Reset();
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 100; i++) {
    const std::string key = Key(i);
    ASSERT_TRUE(db_->Get(ro, key, &value).ok());
  }
  const PerfContext* pc = GetPerfContext();
  EXPECT_GT(pc->get_nanos, 0u);
  // Stage timers nest inside the whole-Get timer.
  EXPECT_LE(pc->memtable_lookup_nanos, pc->get_nanos);
  EXPECT_LE(pc->filter_probe_nanos, pc->get_nanos);
  EXPECT_LE(pc->block_read_nanos, pc->get_nanos);
}

TEST_F(PerfContextTest, WritePathCountsGroupsAndIoStats) {
  OpenAndFill();
  SetPerfLevel(PerfLevel::kCounts);
  GetPerfContext()->Reset();
  GetIOStatsContext()->Reset();
  WriteOptions wo;
  constexpr int kWrites = 50;
  for (int i = 0; i < kWrites; i++) {
    const std::string key = "new" + std::to_string(i);
    ASSERT_TRUE(db_->Put(wo, key, "v").ok());
  }
  const PerfContext* pc = GetPerfContext();
  EXPECT_EQ(pc->write_count, static_cast<uint64_t>(kWrites));
  // Single-threaded: this thread always leads its own commit group.
  EXPECT_EQ(pc->write_groups_led, static_cast<uint64_t>(kWrites));
  EXPECT_EQ(pc->write_groups_joined, 0u);
  // Each commit appended (at least) its WAL record through the env.
  EXPECT_GE(GetIOStatsContext()->write_calls,
            static_cast<uint64_t>(kWrites));
  EXPECT_GT(GetIOStatsContext()->bytes_written, 0u);
}

TEST_F(PerfContextTest, ContextsAreThreadLocal) {
  OpenAndFill();
  SetPerfLevel(PerfLevel::kCounts);
  GetPerfContext()->Reset();
  std::thread other([this] {
    // A thread that never opted in counts nothing, even while this one is
    // counting.
    ASSERT_EQ(GetPerfLevel(), PerfLevel::kDisabled);
    ReadOptions ro;
    std::string value;
    const std::string missing_key_s = MissingKey(1);
    EXPECT_TRUE(db_->Get(ro, missing_key_s, &value).IsNotFound());
    EXPECT_EQ(GetPerfContext()->get_count, 0u);
  });
  other.join();
  EXPECT_EQ(GetPerfContext()->get_count, 0u);
  ReadOptions ro;
  std::string value;
  const std::string missing_key = MissingKey(2);
  EXPECT_TRUE(db_->Get(ro, missing_key, &value).IsNotFound());
  EXPECT_EQ(GetPerfContext()->get_count, 1u);
}

TEST_F(PerfContextTest, ToStringAndJsonRenderNonZeroFields) {
  OpenAndFill();
  SetPerfLevel(PerfLevel::kCounts);
  GetPerfContext()->Reset();
  ReadOptions ro;
  std::string value;
  const std::string missing_key = MissingKey(3);
  EXPECT_TRUE(db_->Get(ro, missing_key, &value).IsNotFound());
  const std::string text = GetPerfContext()->ToString();
  EXPECT_NE(text.find("get_count"), std::string::npos) << text;
  const std::string json = GetPerfContext()->ToJson();
  EXPECT_NE(json.find("\"filter_probes\""), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace monkeydb
