// Tests for Slice, Status, Arena, hashing, RNG, and comparators.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "util/arena.h"
#include "util/comparator.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace monkeydb {
namespace {

TEST(Slice, BasicOps) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);

  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_EQ(s.ToString(), "hello");

  Slice t = s;
  t.remove_prefix(2);
  EXPECT_EQ(t.ToString(), "llo");
  EXPECT_EQ(s.ToString(), "hello");  // Unaffected.

  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("hello!"));
}

TEST(Slice, CompareOrdering) {
  EXPECT_LT(Slice("a").compare("b"), 0);
  EXPECT_GT(Slice("b").compare("a"), 0);
  EXPECT_EQ(Slice("abc").compare("abc"), 0);
  // Prefix sorts before its extension.
  EXPECT_LT(Slice("ab").compare("abc"), 0);
  // Bytewise: 0xFF sorts after everything printable.
  EXPECT_GT(Slice("\xff").compare("z"), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");

  Status nf = Status::NotFound("missing key");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ(nf.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(Arena, AllocateAndUsage) {
  Arena arena;
  EXPECT_EQ(arena.MemoryUsage(), 0u);
  char* small = arena.Allocate(10);
  memset(small, 0xAB, 10);
  EXPECT_GT(arena.MemoryUsage(), 0u);

  // Large allocations get dedicated blocks.
  char* big = arena.Allocate(64 << 10);
  memset(big, 0xCD, 64 << 10);
  EXPECT_GE(arena.MemoryUsage(), (64u << 10));
  // The small allocation still holds its bytes.
  EXPECT_EQ(static_cast<unsigned char>(small[9]), 0xAB);
}

TEST(Arena, AlignedAllocationIsAligned) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    arena.Allocate(1 + (i % 7));  // Misalign the bump pointer.
    char* p = arena.AllocateAligned(24);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
  }
}

TEST(Arena, ExplicitBlockSizeIsHonored) {
  // A custom block size changes the mapping granularity but not the
  // handed-out accounting: one small allocation from a 64 KiB-block arena
  // still reports only what the caller consumed (plus block overhead),
  // and a second small allocation reuses the same block.
  Arena arena(64 << 10);
  char* a = arena.Allocate(100);
  memset(a, 0x11, 100);
  const size_t after_first = arena.MemoryUsage();
  EXPECT_GE(after_first, (64u << 10));  // One block mapped.
  char* b = arena.Allocate(100);
  memset(b, 0x22, 100);
  EXPECT_EQ(arena.MemoryUsage(), after_first);  // Same block reused.
}

TEST(Arena, CacheLineAlignedAllocation) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    arena.Allocate(1 + (i % 7));  // Misalign the bump pointer.
    char* p = arena.AllocateAligned(24, Allocator::kCacheLineSize);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Allocator::kCacheLineSize,
              0u);
  }
}

TEST(Hash, XxHashDeterministicAndSeeded) {
  const uint64_t h1 = XxHash64("monkey", 6);
  EXPECT_EQ(h1, XxHash64("monkey", 6));
  EXPECT_NE(h1, XxHash64("monkey", 6, /*seed=*/1));
  EXPECT_NE(h1, XxHash64("monkez", 6));
  // Long input exercising the 32-byte stripe loop.
  std::string long_input(1000, 'a');
  long_input[500] = 'b';
  std::string long_input2 = long_input;
  long_input2[500] = 'c';
  EXPECT_NE(XxHash64(long_input.data(), long_input.size()),
            XxHash64(long_input2.data(), long_input2.size()));
}

TEST(Hash, XxHashAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t a = XxHash64("abcdefgh", 8);
  const uint64_t b = XxHash64("abcdefgi", 8);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(Hash, Crc32cKnownVector) {
  // Standard CRC32C test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32cPortable("123456789", 9), 0xE3069283u);
}

TEST(Hash, Crc32cDispatchMatchesPortable) {
  // The dispatched implementation (possibly hardware CRC32C) must be
  // bit-identical to the portable one at every length and alignment —
  // on-disk checksums written by one must verify under the other.
  Random rng(17);
  std::string data;
  for (int i = 0; i < 1024; i++) {
    data.push_back(static_cast<char>(rng.Uniform(256)));
  }
  for (size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 255u,
                     511u, 512u, 1000u}) {
    for (size_t off : {0u, 1u, 3u, 7u}) {
      ASSERT_LE(off + len, data.size());
      EXPECT_EQ(Crc32c(data.data() + off, len),
                Crc32cPortable(data.data() + off, len))
          << "len=" << len << " off=" << off
          << " impl=" << Crc32cImplName();
    }
  }
}

TEST(Hash, CrcMaskRoundTrip) {
  const uint32_t crc = Crc32c("some data", 9);
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(Random, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Random a2(123);
  for (int i = 0; i < 100; i++) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Random, UniformCoversRange) {
  Random rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Uniform(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All buckets hit in 1000 draws.
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// Temporal locality (paper Sec. 5): c of the most recent entries receive
// (1-c) of the lookups.
TEST(Random, TemporalLocalitySkew) {
  Random rng(77);
  const uint64_t n = 1000;
  const double c = 0.1;  // 10% most-recent entries get 90% of lookups.
  TemporalLocalityGenerator gen(c, n);
  uint64_t hot_hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; i++) {
    if (gen.NextRank(&rng) < static_cast<uint64_t>(c * n)) hot_hits++;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / trials, 1.0 - c, 0.02);
}

TEST(Random, TemporalLocalityUniformAtHalf) {
  Random rng(78);
  const uint64_t n = 10;
  TemporalLocalityGenerator gen(0.5, n);
  std::map<uint64_t, int> counts;
  const int trials = 50000;
  for (int i = 0; i < trials; i++) counts[gen.NextRank(&rng)]++;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.02) << rank;
  }
}

TEST(Comparator, Bytewise) {
  const Comparator* cmp = BytewiseComparator();
  EXPECT_LT(cmp->Compare("a", "b"), 0);
  EXPECT_EQ(cmp->Compare("a", "a"), 0);
  EXPECT_GT(cmp->Compare("b", "a"), 0);
  EXPECT_STREQ(cmp->Name(), "monkeydb.BytewiseComparator");
}

}  // namespace
}  // namespace monkeydb
