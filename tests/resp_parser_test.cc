// RESP protocol parser: framed and inline commands, incremental feeds
// (frames split at every possible byte boundary must parse identically),
// and malformed/oversized input rejected with a protocol error — never a
// crash, never a silent misparse.

#include "server/resp.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace monkeydb {
namespace {

std::vector<std::string> Args(const std::vector<Slice>& slices) {
  std::vector<std::string> out;
  for (const Slice& s : slices) out.push_back(s.ToString());
  return out;
}

TEST(RespParserTest, FramedCommand) {
  RespParser parser;
  const std::string wire = "*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  EXPECT_EQ(Args(args), (std::vector<std::string>{"SET", "foo", "bar"}));
  EXPECT_EQ(pos, wire.size());
}

TEST(RespParserTest, InlineCommand) {
  RespParser parser;
  const std::string wire = "GET  some-key\r\n";  // Extra separator is fine.
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  EXPECT_EQ(Args(args), (std::vector<std::string>{"GET", "some-key"}));
}

TEST(RespParserTest, BinarySafePayload) {
  RespParser parser;
  std::string value("a\0b\r\nc", 6);
  std::string wire = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$6\r\n";
  wire += value;
  wire += "\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[2].ToString(), value);
}

TEST(RespParserTest, MultipleCommandsInOneBuffer) {
  RespParser parser;
  const std::string wire =
      "*1\r\n$4\r\nPING\r\n*2\r\n$4\r\nECHO\r\n$2\r\nhi\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  EXPECT_EQ(Args(args), (std::vector<std::string>{"PING"}));
  args.clear();
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  EXPECT_EQ(Args(args), (std::vector<std::string>{"ECHO", "hi"}));
  EXPECT_EQ(pos, wire.size());
}

// The fragmentation test that matters: every prefix of a valid frame must
// return kNeedMore without advancing pos, and the whole frame must then
// parse identically to the unfragmented case — the connection re-parses
// from the frame start as bytes trickle in.
TEST(RespParserTest, OneByteAtATimeFeed) {
  const std::string wire =
      "*3\r\n$4\r\nMSET\r\n$1\r\nk\r\n$5\r\nhello\r\n";
  RespParser parser;
  for (size_t len = 0; len < wire.size(); ++len) {
    size_t pos = 0;
    std::vector<Slice> args;
    EXPECT_EQ(parser.ParseOne(wire.data(), len, &pos, &args),
              RespParser::Result::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(pos, 0u) << "prefix length " << len;
  }
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  EXPECT_EQ(Args(args), (std::vector<std::string>{"MSET", "k", "hello"}));
}

TEST(RespParserTest, InlineFragmented) {
  const std::string wire = "PING\r\n";
  RespParser parser;
  for (size_t len = 0; len < wire.size() - 1; ++len) {
    size_t pos = 0;
    std::vector<Slice> args;
    EXPECT_EQ(parser.ParseOne(wire.data(), len, &pos, &args),
              RespParser::Result::kNeedMore);
  }
}

TEST(RespParserTest, EmptyFramesAreSkipped) {
  RespParser parser;
  const std::string wire = "\r\n*0\r\n*1\r\n$4\r\nPING\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kCommand);
  EXPECT_EQ(Args(args), (std::vector<std::string>{"PING"}));
}

TEST(RespParserTest, BadTypeByteInsideMultibulk) {
  RespParser parser;
  const std::string wire = "*1\r\n+PING\r\n";  // Args must be bulks.
  size_t pos = 0;
  std::vector<Slice> args;
  ASSERT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
  EXPECT_NE(parser.error().find("expected '$'"), std::string::npos)
      << parser.error();
}

TEST(RespParserTest, NonNumericLength) {
  RespParser parser;
  const std::string wire = "*1\r\n$abc\r\nPING\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespParserTest, OversizedBulkRejected) {
  RespLimits limits;
  limits.max_bulk_bytes = 16;
  RespParser parser(limits);
  const std::string wire = "*2\r\n$3\r\nGET\r\n$1000\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespParserTest, OversizedMultibulkRejected) {
  RespLimits limits;
  limits.max_multibulk = 4;
  RespParser parser(limits);
  const std::string wire = "*100000\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespParserTest, OversizedInlineRejected) {
  RespLimits limits;
  limits.max_inline_bytes = 8;
  RespParser parser(limits);
  const std::string wire(64, 'a');  // No CRLF, over the line limit.
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespParserTest, GarbageLengthLineRejected) {
  // A '*' followed by tens of bytes with no CRLF cannot be a sane length
  // line; the parser must not wait forever for more input.
  RespParser parser;
  const std::string wire = "*" + std::string(64, '9');
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespParserTest, NegativeBulkLengthRejected) {
  RespParser parser;
  const std::string wire = "*1\r\n$-5\r\n";
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespParserTest, MissingCrlfAfterPayloadRejected) {
  RespParser parser;
  const std::string wire = "*1\r\n$4\r\nPINGxy";  // "xy" != "\r\n".
  size_t pos = 0;
  std::vector<Slice> args;
  EXPECT_EQ(parser.ParseOne(wire.data(), wire.size(), &pos, &args),
            RespParser::Result::kProtocolError);
}

TEST(RespWriterTest, ReplyEncodings) {
  std::string out;
  resp::AppendSimpleString(&out, "OK");
  EXPECT_EQ(out, "+OK\r\n");
  out.clear();
  resp::AppendError(&out, "ERR boom");
  EXPECT_EQ(out, "-ERR boom\r\n");
  out.clear();
  resp::AppendInteger(&out, -42);
  EXPECT_EQ(out, ":-42\r\n");
  out.clear();
  resp::AppendBulk(&out, "hi");
  EXPECT_EQ(out, "$2\r\nhi\r\n");
  out.clear();
  resp::AppendNull(&out);
  EXPECT_EQ(out, "$-1\r\n");
  out.clear();
  resp::AppendArrayHeader(&out, 3);
  EXPECT_EQ(out, "*3\r\n");
}

TEST(GlobMatchTest, Patterns) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("user:*", "user:42"));
  EXPECT_FALSE(GlobMatch("user:*", "session:42"));
  EXPECT_TRUE(GlobMatch("k?y", "key"));
  EXPECT_FALSE(GlobMatch("k?y", "ky"));
  EXPECT_TRUE(GlobMatch("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(GlobMatch("a*b*c", "a-x-b-y"));
  EXPECT_TRUE(GlobMatch("exact", "exact"));
  EXPECT_FALSE(GlobMatch("exact", "exactly"));
}

}  // namespace
}  // namespace monkeydb
