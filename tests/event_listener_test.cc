// EventListener contract: flush/compaction callbacks bracket their jobs in
// order, WAL rotations and filter allocations are announced, write
// backpressure reports its transitions, and a listener that throws is
// contained — counted, logged, and harmless to the background worker.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "util/mutex.h"

namespace monkeydb {
namespace {

// Thread-safe event log: callbacks arrive from the writer and the
// background worker.
class RecordingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo& info) override {
    Add("flush_begin");
    MutexLock lock(mu_);
    flush_begins_.push_back(info);
  }
  void OnFlushCompleted(const FlushJobInfo& info) override {
    Add("flush_end");
    MutexLock lock(mu_);
    flush_ends_.push_back(info);
  }
  void OnCompactionBegin(const CompactionJobInfo& info) override {
    Add("compaction_begin");
    MutexLock lock(mu_);
    compaction_begins_.push_back(info);
  }
  void OnCompactionCompleted(const CompactionJobInfo& info) override {
    Add("compaction_end");
    MutexLock lock(mu_);
    compaction_ends_.push_back(info);
  }
  void OnWriteStallChange(const WriteStallInfo& info) override {
    Add(std::string("stall:") + ToString(info.previous) + "->" +
        ToString(info.current));
    MutexLock lock(mu_);
    stalls_.push_back(info);
  }
  void OnWalRotation(const WalRotationInfo& info) override {
    Add("wal_rotation");
    MutexLock lock(mu_);
    rotations_.push_back(info);
  }
  void OnFilterAllocation(const FilterAllocationInfo& info) override {
    Add("filter_allocation");
    MutexLock lock(mu_);
    allocations_.push_back(info);
  }

  std::vector<std::string> names() const {
    MutexLock lock(mu_);
    return names_;
  }
  std::vector<FlushJobInfo> flush_begins() const {
    MutexLock lock(mu_);
    return flush_begins_;
  }
  std::vector<FlushJobInfo> flush_ends() const {
    MutexLock lock(mu_);
    return flush_ends_;
  }
  std::vector<CompactionJobInfo> compaction_begins() const {
    MutexLock lock(mu_);
    return compaction_begins_;
  }
  std::vector<CompactionJobInfo> compaction_ends() const {
    MutexLock lock(mu_);
    return compaction_ends_;
  }
  std::vector<WriteStallInfo> stalls() const {
    MutexLock lock(mu_);
    return stalls_;
  }
  std::vector<WalRotationInfo> rotations() const {
    MutexLock lock(mu_);
    return rotations_;
  }
  std::vector<FilterAllocationInfo> allocations() const {
    MutexLock lock(mu_);
    return allocations_;
  }

 private:
  void Add(std::string name) {
    MutexLock lock(mu_);
    names_.push_back(std::move(name));
  }

  mutable Mutex mu_;
  std::vector<std::string> names_ GUARDED_BY(mu_);
  std::vector<FlushJobInfo> flush_begins_ GUARDED_BY(mu_);
  std::vector<FlushJobInfo> flush_ends_ GUARDED_BY(mu_);
  std::vector<CompactionJobInfo> compaction_begins_ GUARDED_BY(mu_);
  std::vector<CompactionJobInfo> compaction_ends_ GUARDED_BY(mu_);
  std::vector<WriteStallInfo> stalls_ GUARDED_BY(mu_);
  std::vector<WalRotationInfo> rotations_ GUARDED_BY(mu_);
  std::vector<FilterAllocationInfo> allocations_ GUARDED_BY(mu_);
};

class ThrowingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo&) override { Boom(); }
  void OnFlushCompleted(const FlushJobInfo&) override { Boom(); }
  void OnCompactionBegin(const CompactionJobInfo&) override { Boom(); }
  void OnCompactionCompleted(const CompactionJobInfo&) override { Boom(); }
  void OnWriteStallChange(const WriteStallInfo&) override { Boom(); }
  void OnWalRotation(const WalRotationInfo&) override { Boom(); }
  void OnFilterAllocation(const FilterAllocationInfo&) override { Boom(); }

 private:
  static void Boom() { throw std::runtime_error("listener bug"); }
};

// Delays every SST append so flushes cannot keep up with the writer —
// the deterministic way to drive the immutable-memtable queue into
// slowdown and stall. WAL and manifest writes stay fast.
class SlowSstEnv : public Env {
 public:
  explicit SlowSstEnv(Env* base) : base_(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::unique_ptr<WritableFile> file;
    MONKEYDB_RETURN_IF_ERROR(base_->NewWritableFile(fname, &file));
    const bool is_sst = fname.size() >= 4 &&
                        fname.compare(fname.size() - 4, 4, ".sst") == 0;
    if (is_sst) {
      *result = std::make_unique<SlowFile>(std::move(file));
    } else {
      *result = std::move(file);
    }
    return Status::OK();
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  class SlowFile : public WritableFile {
   public:
    explicit SlowFile(std::unique_ptr<WritableFile> base)
        : base_(std::move(base)) {}
    Status Append(const Slice& data) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override { return base_->Sync(); }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
  };

  Env* base_;
};

class EventListenerTest : public ::testing::Test {
 protected:
  EventListenerTest() : env_(NewMemEnv()) {}

  DbOptions MakeOptions() {
    DbOptions options;
    options.env = env_.get();
    options.buffer_size_bytes = 16 << 10;
    options.size_ratio = 2.0;
    options.listeners.push_back(listener_);
    return options;
  }

  static std::string Key(int i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  std::unique_ptr<Env> env_;
  std::shared_ptr<RecordingListener> listener_ =
      std::make_shared<RecordingListener>();
};

TEST_F(EventListenerTest, FlushEventsBracketEachJob) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "a", "1").ok());
  ASSERT_TRUE(db->Put(wo, "b", "2").ok());
  ASSERT_TRUE(db->Flush().ok());

  const auto begins = listener_->flush_begins();
  const auto ends = listener_->flush_ends();
  ASSERT_EQ(begins.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(begins[0].entries, 2u);
  EXPECT_EQ(ends[0].entries, 2u);
  EXPECT_TRUE(ends[0].ok);
  // Synchronous mode: begin strictly precedes end in the event log.
  const auto names = listener_->names();
  const auto begin_at =
      std::find(names.begin(), names.end(), "flush_begin");
  const auto end_at = std::find(names.begin(), names.end(), "flush_end");
  ASSERT_NE(begin_at, names.end());
  ASSERT_NE(end_at, names.end());
  EXPECT_LT(begin_at - names.begin(), end_at - names.begin());

  // An empty memtable flush is a no-op and announces nothing.
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(listener_->flush_begins().size(), 1u);
}

TEST_F(EventListenerTest, CompactionEventsCarryLevelStats) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < 2000; i++) {
    const std::string key = Key(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  const auto begins = listener_->compaction_begins();
  const auto ends = listener_->compaction_ends();
  ASSERT_GT(begins.size(), 0u);
  ASSERT_EQ(begins.size(), ends.size());
  for (const CompactionJobInfo& info : begins) {
    EXPECT_GE(info.input_level, 1);
    EXPECT_GE(info.output_level, info.input_level);
    EXPECT_GE(info.input_runs, 1u);
  }
  for (const CompactionJobInfo& info : ends) {
    EXPECT_TRUE(info.ok);
    EXPECT_GT(info.output_entries, 0u);
    EXPECT_GE(info.subcompactions, 1u);
  }
  // Every merge the listener saw is in the engine's own ledger.
  EXPECT_EQ(db->GetStats().merges, ends.size());
}

TEST_F(EventListenerTest, WalRotationAnnouncedWithFileNumbers) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  // Opening a fresh DB creates the first WAL (retired number 0).
  auto rotations = listener_->rotations();
  ASSERT_GE(rotations.size(), 1u);
  EXPECT_EQ(rotations[0].retired_file_number, 0u);
  EXPECT_GT(rotations[0].new_file_number, 0u);

  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "a", "1").ok());
  ASSERT_TRUE(db->Flush().ok());
  rotations = listener_->rotations();
  ASSERT_GE(rotations.size(), 2u);
  // Rotation hands off from the previous WAL to a strictly newer file.
  EXPECT_EQ(rotations[1].retired_file_number, rotations[0].new_file_number);
  EXPECT_GT(rotations[1].new_file_number, rotations[1].retired_file_number);
}

TEST_F(EventListenerTest, FilterAllocationsReportDrift) {
  DbOptions options = MakeOptions();
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  options.expected_entries = 2000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < 2000; i++) {
    const std::string key = Key(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  const auto allocations = listener_->allocations();
  ASSERT_GT(allocations.size(), 0u);
  bool saw_first_allocation = false;
  for (const FilterAllocationInfo& info : allocations) {
    EXPECT_GE(info.level, 1);
    EXPECT_GT(info.fpr, 0.0);
    EXPECT_LE(info.fpr, 1.0);
    EXPECT_GT(info.run_entries, 0u);
    EXPECT_NE(info.fpr, info.previous_fpr);
    if (info.previous_fpr == 0.0) saw_first_allocation = true;
  }
  EXPECT_TRUE(saw_first_allocation);
}

TEST_F(EventListenerTest, BackpressureTransitionsAreAnnounced) {
  SlowSstEnv slow_env(env_.get());
  DbOptions options = MakeOptions();
  options.env = &slow_env;
  options.background_compaction = true;
  options.max_immutable_memtables = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  const std::string value(64, 'v');
  bool saw_slowdown = false, saw_stall = false;
  for (int i = 0; i < 20000 && !(saw_slowdown && saw_stall); i++) {
    const std::string key = Key(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
    for (const WriteStallInfo& info : listener_->stalls()) {
      if (info.current == WriteStallInfo::Condition::kSlowdown) {
        saw_slowdown = true;
      }
      if (info.current == WriteStallInfo::Condition::kStalled) {
        saw_stall = true;
      }
    }
  }
  EXPECT_TRUE(saw_slowdown);
  EXPECT_TRUE(saw_stall);
  // Transitions are real state changes with the queue depth attached.
  for (const WriteStallInfo& info : listener_->stalls()) {
    EXPECT_NE(info.previous, info.current);
    if (info.current == WriteStallInfo::Condition::kStalled) {
      EXPECT_GE(info.immutable_memtables, 2u);
    }
  }
  const DbStats stats = db->GetStats();
  EXPECT_GT(stats.write_slowdowns, 0u);
  EXPECT_GT(stats.write_stalls, 0u);
}

TEST_F(EventListenerTest, ThrowingListenerIsContained) {
  DbOptions options = MakeOptions();
  // The thrower runs FIRST; the recorder after it must still hear
  // everything, and the engine must keep working.
  options.listeners.insert(options.listeners.begin(),
                           std::make_shared<ThrowingListener>());
  options.background_compaction = true;
  options.enable_metrics = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < 1000; i++) {
    const std::string key = Key(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // The background worker survived every throw: reads see the data.
  ReadOptions ro;
  std::string out;
  const std::string key = Key(1);
  ASSERT_TRUE(db->Get(ro, key, &out).ok());
  EXPECT_EQ(out, value);

  // Failures were counted, and the recorder behind the thrower still got
  // its callbacks.
  ASSERT_NE(db->metrics(), nullptr);
  EXPECT_GT(db->metrics()->TickTotal(Tick::kListenerFailures), 0u);
  EXPECT_GT(db->metrics()->TickTotal(Tick::kListenerCallbacks),
            db->metrics()->TickTotal(Tick::kListenerFailures));
  EXPECT_GT(listener_->flush_begins().size(), 0u);
  EXPECT_EQ(listener_->flush_begins().size(),
            listener_->flush_ends().size());
}

}  // namespace
}  // namespace monkeydb
