// End-to-end DB engine tests: randomized cross-checks against a reference
// model, structural invariants of both merge policies, range scans, and
// crash recovery.

#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "io/env.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

struct DbTestParam {
  MergePolicy policy;
  double size_ratio;
  bool monkey_filters;
};

std::string ParamName(const ::testing::TestParamInfo<DbTestParam>& info) {
  std::string name;
  switch (info.param.policy) {
    case MergePolicy::kLeveling:
      name = "Leveling";
      break;
    case MergePolicy::kTiering:
      name = "Tiering";
      break;
    case MergePolicy::kLazyLeveling:
      name = "LazyLeveling";
      break;
  }
  name += "T" + std::to_string(static_cast<int>(info.param.size_ratio));
  name += info.param.monkey_filters ? "Monkey" : "Uniform";
  return name;
}

class DbTest : public ::testing::TestWithParam<DbTestParam> {
 protected:
  DbTest() : env_(NewMemEnv()) {}

  DbOptions MakeOptions() {
    DbOptions options;
    options.env = env_.get();
    options.merge_policy = GetParam().policy;
    options.size_ratio = GetParam().size_ratio;
    options.buffer_size_bytes = 8 << 10;  // Small: force many levels.
    options.bits_per_entry = 5.0;
    if (GetParam().monkey_filters) {
      options.fpr_policy = monkey::NewMonkeyFprPolicy();
    }
    return options;
  }

  std::unique_ptr<Env> env_;
};

TEST_P(DbTest, RandomizedAgainstReferenceModel) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());

  // Reference: user key -> live value (nullopt = deleted).
  std::map<std::string, std::optional<std::string>> model;
  Random rng(GetParam().policy == MergePolicy::kLeveling ? 11 : 22);
  WriteOptions wo;
  ReadOptions ro;

  for (int op = 0; op < 8000; op++) {
    const std::string key = "key" + std::to_string(rng.Uniform(1500));
    if (rng.Bernoulli(0.75)) {
      const std::string value = "val" + std::to_string(op);
      ASSERT_TRUE(db->Put(wo, key, value).ok());
      model[key] = value;
    } else {
      ASSERT_TRUE(db->Delete(wo, key).ok());
      model[key] = std::nullopt;
    }

    // Spot-check a random key every few ops.
    if (op % 7 == 0) {
      const std::string probe = "key" + std::to_string(rng.Uniform(1500));
      std::string value;
      Status s = db->Get(ro, probe, &value);
      auto it = model.find(probe);
      if (it == model.end() || !it->second.has_value()) {
        EXPECT_TRUE(s.IsNotFound()) << probe << " op=" << op;
      } else {
        ASSERT_TRUE(s.ok()) << probe << " op=" << op << " " << s.ToString();
        EXPECT_EQ(value, *it->second) << probe;
      }
    }
  }

  // Exhaustive final check.
  for (const auto& [key, expected] : model) {
    std::string value;
    Status s = db->Get(ro, key, &value);
    if (expected.has_value()) {
      ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
      EXPECT_EQ(value, *expected);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key;
    }
  }
}

TEST_P(DbTest, StructuralInvariants) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  Random rng(5);
  for (int i = 0; i < 20000; i++) {
    const std::string key = "k" + std::to_string(rng.Next());
    const std::string payload = std::string(32, 'v');
    ASSERT_TRUE(db->Put(wo, key,
                        payload)
                    .ok());
  }
  const DbStats stats = db->GetStats();
  const int trigger = static_cast<int>(GetParam().size_ratio);
  for (size_t level = 0; level < stats.runs_per_level.size(); level++) {
    switch (GetParam().policy) {
      case MergePolicy::kLeveling:
        EXPECT_LE(stats.runs_per_level[level], 1u) << "level " << level + 1;
        break;
      case MergePolicy::kTiering:
        // Fewer than T runs after cascades settle.
        EXPECT_LT(stats.runs_per_level[level],
                  static_cast<uint64_t>(trigger))
            << "level " << level + 1;
        break;
      case MergePolicy::kLazyLeveling:
        if (static_cast<int>(level) + 1 == stats.deepest_level) {
          EXPECT_EQ(stats.runs_per_level[level], 1u)
              << "largest level " << level + 1;
        } else {
          EXPECT_LT(stats.runs_per_level[level],
                    static_cast<uint64_t>(trigger))
              << "level " << level + 1;
        }
        break;
    }
  }
  EXPECT_GE(stats.deepest_level, 2);  // Data actually cascaded.
  EXPECT_GT(stats.flushes, 0u);
}

TEST_P(DbTest, RangeScanMatchesModel) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  std::map<std::string, std::optional<std::string>> model;
  Random rng(99);
  WriteOptions wo;
  for (int op = 0; op < 6000; op++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%05llu",
             static_cast<unsigned long long>(rng.Uniform(2000)));
    if (rng.Bernoulli(0.8)) {
      const std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(db->Put(wo, buf, value).ok());
      model[buf] = value;
    } else {
      ASSERT_TRUE(db->Delete(wo, buf).ok());
      model[buf] = std::nullopt;
    }
  }

  // Full scan.
  auto iter = db->NewIterator(ReadOptions());
  auto model_it = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    while (model_it != model.end() && !model_it->second.has_value()) {
      ++model_it;
    }
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(iter->key().ToString(), model_it->first);
    EXPECT_EQ(iter->value().ToString(), *model_it->second);
    ++model_it;
  }
  while (model_it != model.end() && !model_it->second.has_value()) {
    ++model_it;
  }
  EXPECT_EQ(model_it, model.end());

  // Bounded scan from a random start.
  iter = db->NewIterator(ReadOptions());
  iter->Seek("key01000");
  int count = 0;
  for (; iter->Valid() && count < 50; iter->Next(), count++) {
    EXPECT_GE(iter->key().ToString(), std::string("key01000"));
  }
}

TEST_P(DbTest, ReopenRecoversEverything) {
  auto options = MakeOptions();
  std::map<std::string, std::string> expected;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    WriteOptions wo;
    Random rng(31);
    for (int i = 0; i < 5000; i++) {
      const std::string key = "key" + std::to_string(i);
      const std::string value = "value" + std::to_string(rng.Next() % 100);
      ASSERT_TRUE(db->Put(wo, key, value).ok());
      expected[key] = value;
    }
    // Note: no explicit Flush — recovery must replay the WAL tail too.
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  ReadOptions ro;
  for (const auto& [key, value] : expected) {
    std::string got;
    ASSERT_TRUE(db->Get(ro, key, &got).ok()) << key;
    EXPECT_EQ(got, value) << key;
  }
  // Deletions survive recovery too.
  WriteOptions wo;
  ASSERT_TRUE(db->Delete(wo, "key100").ok());
  db.reset();
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::string got;
  EXPECT_TRUE(db->Get(ro, "key100", &got).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DbTest,
    ::testing::Values(
        DbTestParam{MergePolicy::kLeveling, 2.0, false},
        DbTestParam{MergePolicy::kLeveling, 2.0, true},
        DbTestParam{MergePolicy::kLeveling, 4.0, true},
        DbTestParam{MergePolicy::kLeveling, 8.0, false},
        DbTestParam{MergePolicy::kTiering, 2.0, true},
        DbTestParam{MergePolicy::kTiering, 3.0, false},
        DbTestParam{MergePolicy::kTiering, 4.0, true},
        DbTestParam{MergePolicy::kTiering, 8.0, true},
        DbTestParam{MergePolicy::kLazyLeveling, 3.0, true},
        DbTestParam{MergePolicy::kLazyLeveling, 4.0, false}),
    ParamName);

// --- Non-parameterized engine tests ---

TEST(DbBasics, RejectsBadOptions) {
  std::unique_ptr<DB> db;
  // A null env is no longer an error: Open constructs the real-filesystem
  // backend named by io_backend. An unwritable path surfaces as the
  // backend's I/O error instead.
  DbOptions no_env;
  const Status no_env_status =
      DB::Open(no_env, "/proc/monkeydb-cannot-create", &db);
  EXPECT_FALSE(no_env_status.ok());
  EXPECT_FALSE(no_env_status.IsInvalidArgument());

  auto env = NewMemEnv();
  DbOptions bad_ratio;
  bad_ratio.env = env.get();
  bad_ratio.size_ratio = 1.5;
  EXPECT_TRUE(DB::Open(bad_ratio, "/db", &db).IsInvalidArgument());
}

TEST(DbBasics, OverwriteSameKeyManyTimes) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 4 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "v" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, "hot_key", key).ok());
  }
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "hot_key", &value).ok());
  EXPECT_EQ(value, "v4999");
  // Compaction collapses duplicates: total disk entries stay small.
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_LE(db->GetStats().total_disk_entries, 16u);
}

TEST(DbBasics, EmptyDbBehaves) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "nothing", &value).IsNotFound());
  auto iter = db->NewIterator(ReadOptions());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  ASSERT_TRUE(db->Flush().ok());  // Flush of empty memtable is a no-op.
  EXPECT_EQ(db->GetStats().total_disk_entries, 0u);
}

TEST(DbBasics, LargeValuesSpanBlocks) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 256 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  // Values near the page size each get their own data block.
  for (int i = 0; i < 100; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string payload = std::string(3500, 'a' + (i % 26));
    ASSERT_TRUE(db->Put(wo, key,
                        payload)
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key42", &value).ok());
  EXPECT_EQ(value, std::string(3500, 'a' + (42 % 26)));
}

TEST(DbBasics, TombstonesPurgedAtBottomLevel) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 4 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 1000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  for (int i = 0; i < 1000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Delete(wo, key).ok());
  }
  // Deletes do not eagerly reach the bottom; a full compaction purges
  // every tombstone and superseded version.
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->GetStats().total_disk_entries, 0u);
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "k500", &value).IsNotFound());
}

TEST(DbBasics, StatsCountersAdvance) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  options.bits_per_entry = 10.0;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 4000; i++) {
    const std::string key = "key" + std::to_string(i);
    const std::string payload = std::string(24, 'x');
    ASSERT_TRUE(
        db->Put(wo, key, payload).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    // NotFound is the point of the probe; only the counters matter here.
    const std::string key = "absent" + std::to_string(i);
    db->Get(ReadOptions(), key, &value)
        .IgnoreError();
  }
  const DbStats stats = db->GetStats();
  EXPECT_EQ(stats.gets, 200u);
  // With 10 bits/key nearly all zero-result probes are filtered out.
  EXPECT_GT(stats.filter_negatives, 0u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.filter_bits_total, 0u);
}

std::set<std::string> WalFilesOnDisk(Env* env) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren("/db", &children).ok());
  std::set<std::string> out;
  for (const std::string& child : children) {
    if (child.rfind("wal-", 0) == 0) out.insert(child);
  }
  return out;
}

std::set<std::string> SstFilesOnDisk(Env* env) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren("/db", &children).ok());
  std::set<std::string> out;
  for (const std::string& child : children) {
    if (child.size() > 4 &&
        child.compare(child.size() - 4, 4, ".sst") == 0) {
      out.insert(child);
    }
  }
  return out;
}

// Regression: flush and compaction queue retired files on obsolete_files_
// instead of unlinking under mu_ — but the queue must actually drain
// before the operation returns. A retired WAL or compaction input still
// on disk afterwards means the deferral leaked the file.
TEST(DbBasics, DeferredObsoleteFilesAreUnlinked) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 4 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 512; i++) {
    const std::string key = "a" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // The WAL retired by the flush is unlinked by the time Flush returns,
  // leaving only the fresh active log.
  EXPECT_EQ(WalFilesOnDisk(env.get()).size(), 1u);

  const std::set<std::string> before = SstFilesOnDisk(env.get());
  ASSERT_FALSE(before.empty());
  for (int i = 0; i < 512; i++) {
    const std::string key = "a" + std::to_string(i);
    const std::string value = "w" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  const std::set<std::string> after = SstFilesOnDisk(env.get());
  ASSERT_FALSE(after.empty());
  // Every pre-compaction run fed the full merge: its file must be gone
  // from the disk, not just from the manifest.
  for (const std::string& name : before) {
    EXPECT_EQ(after.count(name), 0u) << name << " still on disk";
  }
  // And the merged data survived its inputs' deletion.
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "a1", &value).ok());
  EXPECT_EQ(value, "w1");
}

// Same contract on the background path: WaitForDrain means the disk
// reflects the new tree, so the worker unlinks retired files before it
// reports idle.
TEST(DbBasics, BackgroundWorkerDrainsObsoleteFiles) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 4 << 10;
  options.background_compaction = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 2048; i++) {
    const std::string key = "b" + std::to_string(i);
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());  // Switch + WaitForDrain.
  EXPECT_EQ(WalFilesOnDisk(env.get()).size(), 1u);
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "b2047", &value).ok());
  EXPECT_EQ(value, "v2047");
}

}  // namespace
}  // namespace monkeydb
