// Runtime behavior of the annotated synchronization wrappers
// (src/util/mutex.h): mutual exclusion, condition-variable handoff with the
// lock-set-preserving Wait(), and ScopedUnlock's conditional release. The
// compile-time side (GUARDED_BY violations failing the build) is covered by
// the try_compile negative check in tests/CMakeLists.txt.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace monkeydb {
namespace {

// GUARDED_BY applies to data members, so the shared state under test lives
// in small structs rather than annotated locals.
struct GuardedCounter {
  Mutex mu;
  int64_t value GUARDED_BY(mu) = 0;
};

TEST(Mutex, ProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; i++) {
        MutexLock lock(counter.mu);
        counter.value++;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(Mutex, ExplicitLockUnlockPairsWork) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();  // Analysis-only; must be callable and free at runtime.
  mu.Unlock();
  // Relockable after unlock (non-recursive, but reusable).
  mu.Lock();
  mu.Unlock();
}

struct Handoff {
  Mutex mu;
  CondVar cv{&mu};
  bool ready GUARDED_BY(mu) = false;
};

TEST(CondVar, WaitReleasesAndReacquiresTheMutex) {
  Handoff h;

  std::thread signaler([&h] {
    MutexLock lock(h.mu);
    h.ready = true;
    h.cv.Signal();
  });

  {
    MutexLock lock(h.mu);
    // If Wait() failed to release the mutex, the signaler could never set
    // ready and this would deadlock; if it failed to reacquire, the read
    // below would race.
    while (!h.ready) h.cv.Wait();
    EXPECT_TRUE(h.ready);
  }
  signaler.join();
}

struct Barrier {
  Mutex mu;
  CondVar cv{&mu};
  bool go GUARDED_BY(mu) = false;
  int awake GUARDED_BY(mu) = 0;
};

TEST(CondVar, SignalAllWakesEveryWaiter) {
  Barrier b;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; i++) {
    waiters.emplace_back([&b] {
      MutexLock lock(b.mu);
      while (!b.go) b.cv.Wait();
      b.awake++;
    });
  }
  {
    MutexLock lock(b.mu);
    b.go = true;
  }
  b.cv.SignalAll();
  for (std::thread& thread : waiters) thread.join();

  MutexLock lock(b.mu);
  EXPECT_EQ(b.awake, kWaiters);
}

TEST(ScopedUnlock, ReleasesForItsScope) {
  Mutex mu;
  bool observed_unlocked = false;
  mu.Lock();
  {
    ScopedUnlock window(&mu);
    // Another thread must be able to take the lock inside the window.
    std::thread prober([&mu, &observed_unlocked] {
      MutexLock lock(mu);
      observed_unlocked = true;
    });
    prober.join();
  }
  // The window relocked mu on exit; unlocking (valid only while held)
  // completes the pairing.
  mu.Unlock();
  EXPECT_TRUE(observed_unlocked);
}

TEST(ScopedUnlock, ConditionalReleaseIsANoOpWhenDisabled) {
  Mutex mu;
  mu.Lock();
  {
    ScopedUnlock window(&mu, /*release=*/false);
    // mu stays held: nothing to verify beyond not deadlocking on exit
    // (a spurious relock of a held std::mutex would deadlock here).
  }
  mu.Unlock();
}

}  // namespace
}  // namespace monkeydb
