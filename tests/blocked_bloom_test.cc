// Blocked (cache-local) Bloom filter tests: no false negatives, FPR close
// to (slightly above) the standard filter's, and format safety.

#include "bloom/blocked_bloom_filter.h"

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_math.h"

namespace monkeydb {
namespace {

std::string Key(int i) { return "bkey_" + std::to_string(i); }

TEST(BlockedBloom, NoFalseNegatives) {
  BlockedBloomFilterBuilder builder;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(10.0);
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    EXPECT_TRUE(BlockedBloomFilterReader::MayContain(filter, key)) << i;
  }
}

TEST(BlockedBloom, EmptyFilterAlwaysPositive) {
  BlockedBloomFilterBuilder builder;
  for (int i = 0; i < 10; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(0.0);
  EXPECT_TRUE(filter.empty());
  EXPECT_TRUE(BlockedBloomFilterReader::MayContain(filter, "anything"));
}

class BlockedBloomFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlockedBloomFprSweep, FprNearTheoryWithBlockingPenalty) {
  const double bits_per_key = GetParam();
  BlockedBloomFilterBuilder builder;
  const int n = 30000;
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(bits_per_key);

  int fp = 0;
  const int probes = 30000;
  for (int i = 0; i < probes; i++) {
    const std::string key = Key(n + i);
    if (BlockedBloomFilterReader::MayContain(filter, key)) fp++;
  }
  const double empirical = static_cast<double>(fp) / probes;
  const double ideal = bloom::FalsePositiveRate(bits_per_key);
  // Blocking costs accuracy (uneven per-block load): allow up to ~2.2x the
  // ideal FPR plus sampling slack, but demand it's still a real filter.
  EXPECT_LT(empirical, ideal * 2.2 + 0.01) << "bits/key=" << bits_per_key;
  EXPECT_GT(empirical, ideal * 0.3 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BlockedBloomFprSweep,
                         ::testing::Values(4.0, 8.0, 10.0, 12.0));

TEST(BlockedBloom, FormatsAreDistinguished) {
  // A standard filter must not be accepted as a definite-negative source
  // by the blocked reader and vice versa: both fall back to "may contain".
  BloomFilterBuilder standard;
  BlockedBloomFilterBuilder blocked;
  for (int i = 0; i < 1000; i++) {
    const std::string key = Key(i);
    standard.AddKey(key);
    blocked.AddKey(key);
  }
  const std::string standard_filter = standard.Finish(10.0);
  const std::string blocked_filter = blocked.Finish(10.0);

  // Cross-reading never yields a false negative for present keys.
  for (int i = 0; i < 1000; i += 111) {
    const std::string key = Key(i);
    EXPECT_TRUE(BlockedBloomFilterReader::MayContain(standard_filter, key));
    EXPECT_TRUE(BloomFilterReader::MayContain(blocked_filter, key));
  }
}

TEST(BlockedBloom, SizeTracksBudget) {
  BlockedBloomFilterBuilder builder;
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    const std::string key = Key(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(10.0);
  // Rounded up to whole cache lines.
  EXPECT_GE(BlockedBloomFilterReader::SizeBits(filter), 10.0 * n * 0.99);
  EXPECT_LE(BlockedBloomFilterReader::SizeBits(filter),
            10.0 * n + 64 * 8);
  EXPECT_EQ((filter.size() - 2) % 64, 0u);
}

}  // namespace
}  // namespace monkeydb
