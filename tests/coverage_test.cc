// Coverage-widening tests: version-edit round trips, backward table
// iteration, Zipfian distribution, expected_entries planning, CompactAll
// persistence, and DB shape reporting.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "io/env.h"
#include "lsm/db.h"
#include "lsm/version.h"
#include "monkey/monkey_db.h"
#include "sstable/table_builder.h"
#include "sstable/table_reader.h"
#include "util/random.h"

namespace monkeydb {
namespace {

TEST(VersionEdit, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  VersionEdit::AddedRun run;
  run.level = 3;
  run.file_number = 42;
  run.file_size = 123456;
  run.num_entries = 999;
  run.sequence = 777;
  run.smallest = std::string("a\0b", 3);  // Binary-safe.
  run.largest = "zzzz";
  edit.added.push_back(run);
  edit.deleted_files = {7, 8, 9};
  edit.last_sequence = 1000;
  edit.next_file_number = 43;

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(Slice(encoded)).ok());
  ASSERT_EQ(decoded.added.size(), 1u);
  EXPECT_EQ(decoded.added[0].level, 3);
  EXPECT_EQ(decoded.added[0].file_number, 42u);
  EXPECT_EQ(decoded.added[0].file_size, 123456u);
  EXPECT_EQ(decoded.added[0].num_entries, 999u);
  EXPECT_EQ(decoded.added[0].sequence, 777u);
  EXPECT_EQ(decoded.added[0].smallest, run.smallest);
  EXPECT_EQ(decoded.added[0].largest, "zzzz");
  EXPECT_EQ(decoded.deleted_files, (std::vector<uint64_t>{7, 8, 9}));
  EXPECT_EQ(decoded.last_sequence, 1000u);
  EXPECT_EQ(decoded.next_file_number, 43u);
}

TEST(VersionEdit, RejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x63garbage###")).ok());
}

TEST(Version, AggregatesAcrossLevels) {
  Version v;
  v.EnsureLevel(3);
  auto run1 = std::make_shared<RunMetadata>();
  run1->num_entries = 100;
  auto run2 = std::make_shared<RunMetadata>();
  run2->num_entries = 400;
  (*v.mutable_levels())[0].push_back(run1);
  (*v.mutable_levels())[2].push_back(run2);
  EXPECT_EQ(v.TotalEntries(), 500u);
  EXPECT_EQ(v.TotalRuns(), 2u);
  EXPECT_EQ(v.DeepestNonEmptyLevel(), 3);
  EXPECT_EQ(v.RunsAt(2).size(), 0u);
  EXPECT_EQ(v.RunsAt(99).size(), 0u);  // Out of range: empty, no crash.
}

TEST(TableIterator, BackwardScanAcrossBlocks) {
  auto env = NewMemEnv();
  InternalKeyComparator cmp(BytewiseComparator());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/t.sst", &file).ok());
  TableBuilderOptions opts;
  opts.block_size = 512;  // Small blocks: force many.
  TableBuilder builder(opts, file.get());
  const int n = 500;
  for (int i = 0; i < n; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%05d", i);
    std::string ikey;
    AppendInternalKey(&ikey, buf, 1, ValueType::kValue);
    const std::string key = "value" + std::to_string(i);
    builder.Add(ikey, key);
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_GT(builder.num_data_blocks(), 5u);

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("/t.sst", &rfile).ok());
  TableReaderOptions ropts;
  ropts.comparator = &cmp;
  std::unique_ptr<TableReader> table;
  ASSERT_TRUE(TableReader::Open(ropts, std::move(rfile),
                                builder.file_size(), &table)
                  .ok());

  // Walk the whole table backwards.
  auto iter = table->NewIterator();
  iter->SeekToLast();
  for (int i = n - 1; i >= 0; i--) {
    ASSERT_TRUE(iter->Valid()) << i;
    EXPECT_EQ(iter->value().ToString(), "value" + std::to_string(i));
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());

  // Seek then walk backwards across a block boundary.
  std::string seek_key;
  AppendInternalKey(&seek_key, "key00250", kMaxSequenceNumber,
                    kValueTypeForSeek);
  iter->Seek(seek_key);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "value250");
  for (int i = 249; i >= 240; i--) {
    iter->Prev();
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->value().ToString(), "value" + std::to_string(i));
  }
}

TEST(Zipfian, SkewedTowardLowRanks) {
  Random rng(42);
  ZipfianGenerator zipf(10000, 0.99);
  std::map<uint64_t, int> counts;
  const int trials = 100000;
  for (int i = 0; i < trials; i++) counts[zipf.Next(&rng)]++;

  // The most popular item gets far more than uniform share.
  EXPECT_GT(counts[0], trials / 10000 * 20);
  // Top-10 ranks take a large chunk of the mass.
  int top10 = 0;
  for (uint64_t r = 0; r < 10; r++) top10 += counts[r];
  EXPECT_GT(static_cast<double>(top10) / trials, 0.15);
  // All draws within range.
  EXPECT_LT(counts.rbegin()->first, 10000u);
  // Monotone-ish decay: rank 0 >= rank 100 >= rank 5000 (with slack).
  EXPECT_GT(counts[0], counts[100]);
}

TEST(ExpectedEntries, PlansForFinalGeometry) {
  // With expected_entries set, even the very first runs get FPRs planned
  // for the final tree, so early shallow runs get strong filters.
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  options.bits_per_entry = 5.0;
  options.expected_entries = 1 << 20;  // Plan for ~1M entries.
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 2000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  const DbStats stats = db->GetStats();
  // The shallow run was planned as a tiny level of a large tree -> its
  // bits/entry should far exceed the 5-bit average.
  const double bpe = static_cast<double>(stats.filter_bits_total) /
                     stats.total_disk_entries;
  EXPECT_GT(bpe, 8.0);
}

TEST(CompactAll, SurvivesReopen) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "key" + std::to_string(i % 500);
    const std::string val = "v" + std::to_string(i);
    ASSERT_TRUE(
        db->Put(wo, key, val)
            .ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  const DbStats before = db->GetStats();
  EXPECT_EQ(before.total_runs, 1u);
  EXPECT_EQ(before.total_disk_entries, 500u);  // Dedup to live keys.

  db.reset();
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  const DbStats after = db->GetStats();
  EXPECT_EQ(after.total_runs, 1u);
  EXPECT_EQ(after.total_disk_entries, 500u);
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key250", &value).ok());
  EXPECT_EQ(value, "v4750");
}

TEST(DebugString, SummarizesTheTree) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 4000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  std::string value;
  db->Get(ReadOptions(), "absent", &value).ok();
  const std::string report = db->DebugString();
  EXPECT_NE(report.find("LSM-tree: leveling"), std::string::npos) << report;
  EXPECT_NE(report.find("level 1"), std::string::npos) << report;
  EXPECT_NE(report.find("lookups: 1"), std::string::npos) << report;
}

TEST(CurrentShape, ReflectsOptions) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.merge_policy = MergePolicy::kTiering;
  options.size_ratio = 6.0;
  options.buffer_size_bytes = 8 << 10;
  options.bits_per_entry = 7.5;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 3000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  const LsmShape shape = db->CurrentShape();
  EXPECT_EQ(shape.merge_policy, MergePolicy::kTiering);
  EXPECT_DOUBLE_EQ(shape.size_ratio, 6.0);
  EXPECT_DOUBLE_EQ(shape.bits_per_entry_budget, 7.5);
  EXPECT_GT(shape.total_entries, 0u);
  EXPECT_GE(shape.num_levels, 1);
}

}  // namespace
}  // namespace monkeydb
