// End-to-end serving-layer tests: a real MonkeyServer on an ephemeral
// port (MemEnv-backed shards), talked to over real sockets with the
// blocking RespClient. Covers command semantics, pipelined ordering
// (read-your-own-writes within one batch), cross-shard routing and MGET
// reassembly, engine-call batching, slow-client backpressure (pause and
// hard-limit close), protocol-error handling, HTTP /metrics, and INFO.

#include "server/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "server/resp_client.h"
#include "server/shard_router.h"

namespace monkeydb {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts) {
    env_ = NewMemEnv();
    opts.server_port = 0;  // Ephemeral; server_->port() has the real one.
    opts.db_options.env = env_.get();
    ASSERT_TRUE(
        MonkeyServer::Start(opts, "/server", &server_).ok());
  }

  void StartServer(int shards = 1) {
    ServerOptions opts;
    opts.server_shards = shards;
    StartServer(opts);
  }

  Status Connect(RespClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  // Polls until pred() holds or ~5s pass (event loops are asynchronous).
  template <typename Pred>
  bool WaitFor(Pred pred) {
    for (int i = 0; i < 500; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<MonkeyServer> server_;
};

TEST_F(ServerTest, BasicCommands) {
  StartServer();
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  RespReply r;

  ASSERT_TRUE(c.Command({"PING"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kSimple);
  EXPECT_EQ(r.str, "PONG");

  ASSERT_TRUE(c.Command({"PING", "hello"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kBulk);
  EXPECT_EQ(r.str, "hello");

  ASSERT_TRUE(c.Command({"ECHO", "x"}, &r).ok());
  EXPECT_EQ(r.str, "x");

  ASSERT_TRUE(c.Command({"SET", "k", "v"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kSimple);
  EXPECT_EQ(r.str, "OK");

  ASSERT_TRUE(c.Command({"GET", "k"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kBulk);
  EXPECT_EQ(r.str, "v");

  ASSERT_TRUE(c.Command({"GET", "missing"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kNull);

  ASSERT_TRUE(c.Command({"EXISTS", "k", "missing", "k"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kInteger);
  EXPECT_EQ(r.integer, 2);

  ASSERT_TRUE(c.Command({"DEL", "k", "missing"}, &r).ok());
  EXPECT_EQ(r.integer, 1);

  ASSERT_TRUE(c.Command({"GET", "k"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kNull);

  ASSERT_TRUE(c.Command({"MSET", "a", "1", "b", "2"}, &r).ok());
  EXPECT_EQ(r.str, "OK");

  ASSERT_TRUE(c.Command({"MGET", "a", "missing", "b"}, &r).ok());
  ASSERT_EQ(r.type, RespReply::Type::kArray);
  ASSERT_EQ(r.elements.size(), 3u);
  EXPECT_EQ(r.elements[0].str, "1");
  EXPECT_EQ(r.elements[1].type, RespReply::Type::kNull);
  EXPECT_EQ(r.elements[2].str, "2");

  // Binary-safe round trip.
  const std::string binary("\x00\x01\r\n\xff", 5);
  ASSERT_TRUE(c.Command({"SET", "bin", binary}, &r).ok());
  ASSERT_TRUE(c.Command({"GET", "bin"}, &r).ok());
  EXPECT_EQ(r.str, binary);

  ASSERT_TRUE(c.Command({"CONFIG", "GET", "server_shards"}, &r).ok());
  ASSERT_EQ(r.type, RespReply::Type::kArray);
  ASSERT_EQ(r.elements.size(), 2u);
  EXPECT_EQ(r.elements[0].str, "server_shards");
  EXPECT_EQ(r.elements[1].str, "1");

  ASSERT_TRUE(c.Command({"SELECT", "0"}, &r).ok());
  EXPECT_EQ(r.str, "OK");
  ASSERT_TRUE(c.Command({"SELECT", "3"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kError);

  ASSERT_TRUE(c.Command({"NOSUCHCMD", "x"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kError);
  EXPECT_NE(r.str.find("unknown command"), std::string::npos);

  ASSERT_TRUE(c.Command({"GET"}, &r).ok());  // Arity violation.
  EXPECT_EQ(r.type, RespReply::Type::kError);
  EXPECT_NE(r.str.find("wrong number of arguments"), std::string::npos);

  // MSET with an unpaired key: arity error, nothing applied.
  ASSERT_TRUE(c.Command({"MSET", "x", "1", "orphan"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kError);
  ASSERT_TRUE(c.Command({"GET", "x"}, &r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kNull);
}

// The pipelining contract: a mixed batch executes with per-connection
// ordering — a GET after a SET of the same key (same pipeline) must see
// that SET, and replies come back in command order.
TEST_F(ServerTest, PipelinedMixedBatchPreservesOrder) {
  StartServer();
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());

  std::string batch;
  RespClient::EncodeCommand({"SET", "a", "1"}, &batch);
  RespClient::EncodeCommand({"GET", "a"}, &batch);
  RespClient::EncodeCommand({"SET", "a", "2"}, &batch);
  RespClient::EncodeCommand({"GET", "a"}, &batch);
  RespClient::EncodeCommand({"DEL", "a"}, &batch);
  RespClient::EncodeCommand({"GET", "a"}, &batch);
  RespClient::EncodeCommand({"PING"}, &batch);
  ASSERT_TRUE(c.SendRaw(batch).ok());

  RespReply r;
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "OK");
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "1");
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "OK");
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "2");
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.integer, 1);
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kNull);
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "PONG");
}

// Pipelined commands must coalesce into far fewer engine calls — the
// serving layer's acceptance metric is <= 0.2 calls/command at depth 16.
TEST_F(ServerTest, PipeliningBatchesEngineCalls) {
  StartServer(4);
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());

  // Warm up: the counters include nothing else on a fresh server.
  constexpr int kKeys = 160;
  std::string batch;
  for (int i = 0; i < kKeys; ++i) {
    RespClient::EncodeCommand(
        {"SET", "key" + std::to_string(i), "v" + std::to_string(i)},
        &batch);
  }
  for (int i = 0; i < kKeys; ++i) {
    RespClient::EncodeCommand({"GET", "key" + std::to_string(i)}, &batch);
  }
  ASSERT_TRUE(c.SendRaw(batch).ok());
  RespReply r;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(c.ReadReply(&r).ok());
    EXPECT_EQ(r.str, "OK");
  }
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(c.ReadReply(&r).ok());
    EXPECT_EQ(r.str, "v" + std::to_string(i));
  }

  const auto calls = server_->engine_calls();
  const uint64_t commands = server_->commands_processed();
  EXPECT_EQ(commands, 2u * kKeys);
  // TCP may split the batch across several ticks; even pessimistically
  // (a few ticks, 4 shards each) the coalescing must beat 0.2
  // calls/command by a wide margin against the 320-command batch.
  EXPECT_LE(calls.Total(), commands / 5)
      << "point_gets=" << calls.point_gets
      << " multigets=" << calls.multigets << " writes=" << calls.writes;
}

TEST_F(ServerTest, ShardRoutingIsStableAndComplete) {
  StartServer(4);
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());

  // Every key maps to exactly one shard, deterministically.
  const ShardRouter independent(4);
  std::set<int> used;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "route" + std::to_string(i);
    const int shard = server_->router().ShardOf(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(shard, independent.ShardOf(key));  // Restart-stable.
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u) << "64 keys should touch all 4 shards";

  // Writes land on the shard the router names — and only there.
  RespReply r;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "route" + std::to_string(i);
    ASSERT_TRUE(c.Command({"SET", key, "v" + std::to_string(i)}, &r).ok());
  }
  for (int i = 0; i < 64; ++i) {
    const std::string key = "route" + std::to_string(i);
    const int shard = server_->router().ShardOf(key);
    std::string value;
    ReadOptions ro;
    for (int s = 0; s < 4; ++s) {
      const Status st = server_->shard_db(s)->Get(ro, key, &value);
      if (s == shard) {
        EXPECT_TRUE(st.ok()) << key << " missing from its shard";
      } else {
        EXPECT_TRUE(st.IsNotFound()) << key << " leaked to shard " << s;
      }
    }
  }

  // MGET spanning all shards returns values in request order.
  std::vector<std::string> mget = {"MGET"};
  for (int i = 63; i >= 0; --i) mget.push_back("route" + std::to_string(i));
  ASSERT_TRUE(c.Command(mget, &r).ok());
  ASSERT_EQ(r.type, RespReply::Type::kArray);
  ASSERT_EQ(r.elements.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(r.elements[static_cast<size_t>(i)].str,
              "v" + std::to_string(63 - i));
  }
}

TEST_F(ServerTest, ScanWalksEveryShardExactlyOnce) {
  StartServer(4);
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());

  RespReply r;
  std::set<std::string> expect;
  for (int i = 0; i < 200; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "scan%03d", i);
    ASSERT_TRUE(c.Command({"SET", key, "x"}, &r).ok());
    expect.insert(key);
  }

  std::set<std::string> seen;
  std::string cursor = "0";
  int rounds = 0;
  do {
    ASSERT_TRUE(
        c.Command({"SCAN", cursor, "COUNT", "50"}, &r).ok());
    ASSERT_EQ(r.type, RespReply::Type::kArray);
    ASSERT_EQ(r.elements.size(), 2u);
    cursor = r.elements[0].str;
    for (const RespReply& key : r.elements[1].elements) {
      EXPECT_TRUE(seen.insert(key.str).second)
          << key.str << " returned twice";
    }
    ASSERT_LT(++rounds, 100) << "SCAN failed to terminate";
  } while (cursor != "0");
  EXPECT_EQ(seen, expect);

  // MATCH filters server-side.
  ASSERT_TRUE(c.Command({"SCAN", "0", "MATCH", "scan00?", "COUNT",
                         "1000"}, &r).ok());
  std::set<std::string> matched;
  for (const RespReply& key : r.elements[1].elements) {
    matched.insert(key.str);
  }
  EXPECT_EQ(matched.size(), 10u);
}

// Above the soft output limit the server must stop reading from the
// connection (backpressure) instead of buffering without bound — and
// still deliver every reply once the client drains.
TEST_F(ServerTest, SlowClientBackpressurePausesReads) {
  ServerOptions opts;
  opts.server_max_pipeline = 2;  // Small ticks: backlog grows gradually.
  opts.server_output_soft_limit_bytes = 1u << 20;
  opts.server_output_hard_limit_bytes = 256u << 20;
  StartServer(opts);

  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  // Modest receive window so replies back up in the server rather than
  // the kernel (but not so small — below one MSS — that the later drain
  // crawls; the 16 MiB burst dwarfs tcp_wmem's 4 MB cap either way).
  const int rcvbuf = 64 << 10;
  setsockopt(c.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  const std::string big(1u << 20, 'x');
  RespReply r;
  ASSERT_TRUE(c.Command({"SET", "big", big}, &r).ok());
  ASSERT_EQ(r.str, "OK");

  constexpr int kGets = 16;  // 16 MiB of replies vs a 1 MiB soft limit.
  std::string batch;
  for (int i = 0; i < kGets; ++i) {
    RespClient::EncodeCommand({"GET", "big"}, &batch);
  }
  ASSERT_TRUE(c.SendRaw(batch).ok());

  // Without reading a byte, the server must hit the pause.
  ASSERT_TRUE(WaitFor([&] {
    return server_->metrics()->TickTotal(
               Tick::kServerBackpressurePauses) > 0;
  }));

  // Drain: every reply arrives intact, in order.
  for (int i = 0; i < kGets; ++i) {
    ASSERT_TRUE(c.ReadReply(&r).ok()) << "reply " << i;
    ASSERT_EQ(r.type, RespReply::Type::kBulk);
    EXPECT_EQ(r.str.size(), big.size()) << "reply " << i;
  }
  EXPECT_EQ(r.str, big);
}

// Past the hard limit the connection is dropped outright.
TEST_F(ServerTest, HardOutputLimitClosesConnection) {
  ServerOptions opts;
  opts.server_output_soft_limit_bytes = 1u << 20;
  opts.server_output_hard_limit_bytes = 4u << 20;
  StartServer(opts);

  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  const int rcvbuf = 64 << 10;
  setsockopt(c.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  const std::string big(1u << 20, 'y');
  RespReply r;
  ASSERT_TRUE(c.Command({"SET", "big", big}, &r).ok());

  // One tick's worth of replies (16 MiB) blows straight past the 4 MiB
  // hard limit.
  std::string batch;
  for (int i = 0; i < 16; ++i) {
    RespClient::EncodeCommand({"GET", "big"}, &batch);
  }
  ASSERT_TRUE(c.SendRaw(batch).ok());

  ASSERT_TRUE(WaitFor([&] {
    return server_->metrics()->TickTotal(Tick::kServerOverlimitCloses) >
           0;
  }));
  // The client eventually observes the close (possibly after reading the
  // replies that were already flushed into socket buffers).
  Status s;
  for (int i = 0; i < 64 && s.ok(); ++i) {
    s = c.ReadReply(&r);
  }
  EXPECT_FALSE(s.ok());
}

TEST_F(ServerTest, ProtocolErrorRepliesAndCloses) {
  StartServer();
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());

  // Multibulk args must be bulk strings; '+' is a protocol violation.
  ASSERT_TRUE(c.SendRaw("*1\r\n+PING\r\n").ok());
  RespReply r;
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.type, RespReply::Type::kError);
  EXPECT_NE(r.str.find("Protocol error"), std::string::npos) << r.str;
  // The server closes after the error reply.
  EXPECT_FALSE(c.ReadReply(&r).ok());
  EXPECT_EQ(server_->metrics()->TickTotal(Tick::kServerProtocolErrors),
            1u);

  // A fresh connection still works: the failure was contained.
  RespClient c2;
  ASSERT_TRUE(Connect(&c2).ok());
  ASSERT_TRUE(c2.Command({"PING"}, &r).ok());
  EXPECT_EQ(r.str, "PONG");
}

TEST_F(ServerTest, HttpMetricsEndpoint) {
  StartServer(2);
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  RespReply r;
  ASSERT_TRUE(c.Command({"SET", "k", "v"}, &r).ok());

  RespClient http;
  ASSERT_TRUE(Connect(&http).ok());
  ASSERT_TRUE(http.SendRaw("GET /metrics HTTP/1.0\r\n\r\n").ok());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(http.fd(), buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("monkeydb_gets_total"), std::string::npos);
  EXPECT_NE(response.find("monkey_predicted_fpr"), std::string::npos);
  EXPECT_NE(response.find("monkey_server_commands_total"),
            std::string::npos);
  // Both shards appear, each under its own label.
  EXPECT_NE(response.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(response.find("shard=\"1\""), std::string::npos);

  // Unknown paths 404; RESP still works on the same port afterwards.
  RespClient http2;
  ASSERT_TRUE(Connect(&http2).ok());
  ASSERT_TRUE(http2.SendRaw("GET /nope HTTP/1.0\r\n\r\n").ok());
  response.clear();
  while ((n = ::recv(http2.fd(), buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(response.find("404"), std::string::npos);
  ASSERT_TRUE(c.Command({"PING"}, &r).ok());
  EXPECT_EQ(r.str, "PONG");
}

TEST_F(ServerTest, InfoReportsShardsAndArenaBacking) {
  StartServer(2);
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  RespReply r;
  ASSERT_TRUE(c.Command({"SET", "k", "v"}, &r).ok());
  ASSERT_TRUE(c.Command({"INFO"}, &r).ok());
  ASSERT_EQ(r.type, RespReply::Type::kBulk);
  EXPECT_NE(r.str.find("server_shards:2"), std::string::npos);
  EXPECT_NE(r.str.find("# Shard0"), std::string::npos);
  EXPECT_NE(r.str.find("# Shard1"), std::string::npos);
  // The arena backing tier surfaces per shard (satellite: operational
  // state from the concurrent-memtable PR).
  EXPECT_NE(r.str.find("arena_backing:"), std::string::npos);
  // MemEnv has no io_uring; the INFO line must say so, not vanish.
  EXPECT_NE(r.str.find("io_uring_active:0"), std::string::npos);
  EXPECT_NE(r.str.find("engine_calls_per_command:"), std::string::npos);
}

TEST_F(ServerTest, QuitFlushesAndCloses) {
  StartServer();
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  std::string batch;
  RespClient::EncodeCommand({"SET", "q", "1"}, &batch);
  RespClient::EncodeCommand({"GET", "q"}, &batch);
  RespClient::EncodeCommand({"QUIT"}, &batch);
  ASSERT_TRUE(c.SendRaw(batch).ok());
  RespReply r;
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "OK");
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "1");
  ASSERT_TRUE(c.ReadReply(&r).ok());
  EXPECT_EQ(r.str, "OK");
  EXPECT_FALSE(c.ReadReply(&r).ok());  // Closed after the flush.
}

TEST_F(ServerTest, StopIsIdempotentAndCountersSurvive) {
  StartServer();
  RespClient c;
  ASSERT_TRUE(Connect(&c).ok());
  RespReply r;
  ASSERT_TRUE(c.Command({"SET", "k", "v"}, &r).ok());
  server_->Stop();
  server_->Stop();
  EXPECT_GE(server_->commands_processed(), 1u);
  EXPECT_GE(server_->engine_calls().writes, 1u);
}

}  // namespace
}  // namespace monkeydb
