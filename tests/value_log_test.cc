// Key-value separation tests: the ValueLog itself, and the engine with
// separation enabled (correctness, recovery, iteration, write-amp win).

#include "lsm/value_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

TEST(ValueLog, AddGetRoundTrip) {
  auto env = NewMemEnv();
  std::unique_ptr<ValueLog> log;
  ASSERT_TRUE(env->CreateDir("/db").ok());
  ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &log).ok());

  ValueHandle h1, h2, h3;
  ASSERT_TRUE(log->Add("first value", false, &h1).ok());
  const std::string payload = std::string(10000, 'x');
  ASSERT_TRUE(log->Add(payload, false, &h2).ok());
  ASSERT_TRUE(log->Add("", false, &h3).ok());

  std::string value;
  ASSERT_TRUE(log->Get(h1, &value).ok());
  EXPECT_EQ(value, "first value");
  ASSERT_TRUE(log->Get(h2, &value).ok());
  EXPECT_EQ(value.size(), 10000u);
  ASSERT_TRUE(log->Get(h3, &value).ok());
  EXPECT_TRUE(value.empty());
}

TEST(ValueLog, HandleEncodingRoundTrip) {
  ValueHandle h;
  h.file_number = 7;
  h.offset = 123456789;
  h.size = 4242;
  std::string encoded;
  h.EncodeTo(&encoded);
  ValueHandle decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input));
  EXPECT_EQ(decoded.file_number, 7u);
  EXPECT_EQ(decoded.offset, 123456789u);
  EXPECT_EQ(decoded.size, 4242u);
  EXPECT_TRUE(input.empty());
}

TEST(ValueLog, SurvivesReopenWithNewActiveFile) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDir("/db").ok());
  ValueHandle old_handle;
  {
    std::unique_ptr<ValueLog> log;
    ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &log).ok());
    ASSERT_TRUE(log->Add("persisted", false, &old_handle).ok());
  }
  std::unique_ptr<ValueLog> log;
  ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &log).ok());
  // New active file numbered above the old one; old handles still resolve.
  EXPECT_GT(log->active_file_number(), old_handle.file_number);
  std::string value;
  ASSERT_TRUE(log->Get(old_handle, &value).ok());
  EXPECT_EQ(value, "persisted");
}

TEST(ValueLog, DetectsCorruption) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDir("/db").ok());
  std::unique_ptr<ValueLog> log;
  ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &log).ok());
  ValueHandle h;
  ASSERT_TRUE(log->Add("fragile", false, &h).ok());

  ValueHandle bogus = h;
  bogus.offset += 1;  // Misaligned: CRC or size must fail.
  std::string value;
  EXPECT_FALSE(log->Get(bogus, &value).ok());
}

// Regression test for an accessor race fixed alongside the thread-safety
// annotations: active_file_number() and bytes_appended() used to read
// mu_-guarded fields without taking the lock while Add() advanced them
// under it. Under TSan the old code fails here; the annotated build also
// rejects it at compile time (the fields are GUARDED_BY(mu_)).
TEST(ValueLog, AccessorsRaceFreeAgainstConcurrentAdds) {
  auto env = NewMemEnv();
  std::unique_ptr<ValueLog> log;
  ASSERT_TRUE(env->CreateDir("/db").ok());
  ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &log).ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> reader_ran{false};
  std::thread reader([&] {
    uint64_t sink = 0;
    // Guarantee at least one read concurrent with the writes below; a
    // fast writer could otherwise set `stop` before this thread is even
    // scheduled, leaving sink == 0.
    do {
      sink += log->active_file_number();
      sink += log->bytes_appended();
      reader_ran.store(true, std::memory_order_relaxed);
    } while (!stop.load(std::memory_order_relaxed));
    EXPECT_GT(sink, 0u);  // active_file_number() >= 1 from the first read.
  });
  const std::string value(512, 'v');
  uint64_t expected = 0;
  for (int i = 0; i < 2000; i++) {
    ValueHandle handle;
    ASSERT_TRUE(log->Add(value, false, &handle).ok());
    expected += 8 + value.size();  // Header (crc + size) plus payload.
  }
  while (!reader_ran.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(log->bytes_appended(), expected);
}

// Regression: ReaderFor opens cold-cache files with mu_ released, so
// concurrent first reads race to open and cache the same log file. The
// losers must adopt the winner's cached reader and every Get must still
// return the right bytes (the old REQUIRES(mu_) version serialized all
// reads behind Add's append+fsync; the rewrite must not trade that for a
// torn cache).
TEST(ValueLog, ConcurrentColdCacheGets) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDir("/db").ok());
  constexpr int kValues = 16;
  std::vector<ValueHandle> handles(kValues);
  {
    std::unique_ptr<ValueLog> writer;
    ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &writer).ok());
    for (int i = 0; i < kValues; i++) {
      const std::string value = "payload-" + std::to_string(i);
      ASSERT_TRUE(writer->Add(value, false, &handles[i]).ok());
    }
  }
  // Reopen: the reader cache is cold, so every thread's first Get is a
  // cache miss and the opens all race on the same file number.
  std::unique_ptr<ValueLog> log;
  ASSERT_TRUE(ValueLog::Open(env.get(), "/db", &log).ok());
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int round = 0; round < 4; round++) {
        for (int i = 0; i < kValues; i++) {
          std::string value;
          const std::string want = "payload-" + std::to_string(i);
          if (!log->Get(handles[i], &value).ok() || value != want) {
            mismatches++;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Engine integration ---

class SeparatedDbTest : public ::testing::Test {
 protected:
  SeparatedDbTest() : env_(NewMemEnv()) {}

  DbOptions MakeOptions() {
    DbOptions options;
    options.env = env_.get();
    options.buffer_size_bytes = 16 << 10;
    options.value_separation_threshold = 128;  // Large values only.
    options.fpr_policy = monkey::NewMonkeyFprPolicy();
    return options;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(SeparatedDbTest, MixedSizesRoundTrip) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  ReadOptions ro;
  Random rng(3);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; i++) {
    const std::string key = "key" + std::to_string(rng.Uniform(800));
    // Mix of inline (< 128 B) and separated (>= 128 B) values.
    const size_t size = rng.Bernoulli(0.5) ? 16 : 512;
    const std::string value(size, static_cast<char>('a' + (i % 26)));
    ASSERT_TRUE(db->Put(wo, key, value).ok());
    model[key] = value;
  }
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(db->Get(ro, key, &value).ok()) << key;
    EXPECT_EQ(value, expected) << key;
  }
}

TEST_F(SeparatedDbTest, SurvivesRecovery) {
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
    WriteOptions wo;
    for (int i = 0; i < 500; i++) {
      const std::string key = "big" + std::to_string(i);
      const std::string payload = std::string(400, 'B');
      ASSERT_TRUE(db->Put(wo, key,
                          payload)
                      .ok());
    }
    // No explicit flush: recovery must replay handle records from the WAL.
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  std::string value;
  for (int i = 0; i < 500; i += 17) {
    const std::string key = "big" + std::to_string(i);
    ASSERT_TRUE(db->Get(ReadOptions(), key, &value)
                    .ok())
        << i;
    EXPECT_EQ(value, std::string(400, 'B'));
  }
}

TEST_F(SeparatedDbTest, IteratorResolvesHandles) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    const std::string payload = std::string(200 + i, 'v');
    ASSERT_TRUE(
        db->Put(wo, buf, payload).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  auto iter = db->NewIterator(ReadOptions());
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    EXPECT_EQ(iter->value().size(), static_cast<size_t>(200 + i));
  }
  EXPECT_EQ(i, 100);
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(SeparatedDbTest, DeletesAndOverwritesWork) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteOptions wo;
  const std::string payload_s = std::string(300, 'a');
  ASSERT_TRUE(db->Put(wo, "k", payload_s).ok());
  const std::string payload = std::string(300, 'b');
  ASSERT_TRUE(db->Put(wo, "k", payload).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, std::string(300, 'b'));
  ASSERT_TRUE(db->Delete(wo, "k").ok());
  EXPECT_TRUE(db->Get(ReadOptions(), "k", &value).IsNotFound());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_TRUE(db->Get(ReadOptions(), "k", &value).IsNotFound());
}

TEST_F(SeparatedDbTest, WriteBatchWithLargeValues) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  WriteBatch batch;
  batch.Put("small", "s");
  const std::string payload = std::string(1000, 'L');
  batch.Put("large", payload);
  batch.Delete("small");
  ASSERT_TRUE(db->Write(WriteOptions(), batch).ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "small", &value).IsNotFound());
  ASSERT_TRUE(db->Get(ReadOptions(), "large", &value).ok());
  EXPECT_EQ(value.size(), 1000u);
}

TEST(ValueSeparation, CutsCompactionWriteAmplification) {
  // The WiscKey effect: with 1 KB values, merges move only handles, so
  // total write I/O drops sharply; lookups pay one extra I/O.
  auto measure = [](size_t threshold) {
    auto base = NewMemEnv();
    IoStats stats;
    CountingEnv env(base.get(), &stats, 4096);
    DbOptions options;
    options.env = &env;
    options.buffer_size_bytes = 32 << 10;
    options.bits_per_entry = 8.0;
    options.value_separation_threshold = threshold;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, "/db", &db).ok());
    WriteOptions wo;
    const std::string value(1024, 'v');
    for (int i = 0; i < 8000; i++) {
      char key[24];
      snprintf(key, sizeof(key), "user%012d", i);
      EXPECT_TRUE(db->Put(wo, key, value).ok());
    }
    EXPECT_TRUE(db->Flush().ok());
    const double write_ios =
        static_cast<double>(stats.Snapshot().write_ios);

    std::string out;
    Random rng(4);
    const auto before = stats.Snapshot();
    for (int i = 0; i < 1000; i++) {
      char key[24];
      snprintf(key, sizeof(key), "user%012llu",
               static_cast<unsigned long long>(rng.Uniform(8000)));
      EXPECT_TRUE(db->Get(ReadOptions(), key, &out).ok());
      EXPECT_EQ(out.size(), 1024u);
    }
    const double lookup_ios =
        static_cast<double>((stats.Snapshot() - before).read_ios) / 1000;
    return std::pair<double, double>(write_ios, lookup_ios);
  };

  const auto [inline_writes, inline_lookups] = measure(0);
  const auto [separated_writes, separated_lookups] = measure(256);
  EXPECT_LT(separated_writes, inline_writes * 0.6)
      << "separation should cut write I/O substantially";
  // Lookups: inline ~1 I/O; separated ~2 (tree page + log page).
  EXPECT_GT(separated_lookups, inline_lookups);
  EXPECT_LT(separated_lookups, inline_lookups + 1.3);
}

}  // namespace
}  // namespace monkeydb
