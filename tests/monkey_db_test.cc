// Tests for the monkey_db glue: ApplyTuning and OpenNavigableMonkey.

#include "monkey/monkey_db.h"

#include <gtest/gtest.h>

#include "io/env.h"

namespace monkeydb {
namespace monkey {
namespace {

TEST(ApplyTuning, TranslatesTuningIntoOptions) {
  Tuning tuning;
  tuning.policy = MergePolicy::kTiering;
  tuning.size_ratio = 6.0;
  tuning.buffer_bits = 8.0 * (1 << 20);  // 1 MB in bits.
  tuning.filter_bits = 7.5 * 1000000;

  DbOptions options;
  ApplyTuning(tuning, /*num_entries=*/1000000, &options);
  EXPECT_EQ(options.merge_policy, MergePolicy::kTiering);
  EXPECT_DOUBLE_EQ(options.size_ratio, 6.0);
  EXPECT_EQ(options.buffer_size_bytes, size_t{1 << 20});
  EXPECT_DOUBLE_EQ(options.bits_per_entry, 7.5);
  EXPECT_NE(options.fpr_policy, nullptr);
  EXPECT_STREQ(options.fpr_policy->Name(), "monkey");
}

TEST(ApplyTuning, FloorsTinyBuffers) {
  Tuning tuning;
  tuning.buffer_bits = 8.0;  // 1 byte: must floor to a sane page.
  DbOptions options;
  ApplyTuning(tuning, 1000, &options);
  EXPECT_GE(options.buffer_size_bytes, 4096u);
}

TEST(OpenNavigableMonkey, TunesAndOpens) {
  auto env = NewMemEnv();
  Environment environment;
  environment.num_entries = 50000;
  environment.entry_size_bits = 64 * 8;
  environment.total_memory_bits = 10.0 * environment.num_entries;

  Workload workload;
  workload.zero_result_lookups = 0.7;
  workload.updates = 0.3;

  DbOptions base;
  base.env = env.get();

  Tuning chosen;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(OpenNavigableMonkey(environment, workload, base, "/nav",
                                  &chosen, &db)
                  .ok());
  ASSERT_TRUE(chosen.feasible);
  EXPECT_EQ(db->options().merge_policy, chosen.policy);
  EXPECT_DOUBLE_EQ(db->options().size_ratio, chosen.size_ratio);

  // The opened DB works end to end.
  WriteOptions wo;
  for (int i = 0; i < 3000; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "v").ok());
  }
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k1500", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST(UniformFprPolicy, MatchesEq2) {
  UniformFprPolicy policy;
  LsmShape shape;
  shape.bits_per_entry_budget = 10.0;
  EXPECT_NEAR(policy.RunFpr(shape, 1), 0.0082, 0.001);
  EXPECT_NEAR(policy.RunFpr(shape, 5), policy.RunFpr(shape, 1), 1e-12);
  EXPECT_STREQ(policy.Name(), "uniform");
}

}  // namespace
}  // namespace monkey
}  // namespace monkeydb
