// Design-space enumeration and what-if analysis tests (Figs. 1, 4, 8 and
// the Sec. 4.4 what-if questions).

#include "monkey/design_space.h"

#include <gtest/gtest.h>

namespace monkeydb {
namespace monkey {
namespace {

DesignPoint BaseConfig() {
  DesignPoint d;
  d.policy = MergePolicy::kLeveling;
  d.size_ratio = 2.0;
  d.num_entries = 1e8;
  d.entry_size_bits = 128 * 8;
  d.buffer_bits = 8.0 * (1 << 20) * 8;
  d.filter_bits = 10.0 * d.num_entries;
  d.entries_per_page = 32;
  return d;
}

Environment BaseEnv() {
  Environment env;
  env.num_entries = 1e8;
  env.entry_size_bits = 128 * 8;
  env.total_memory_bits = 12.0 * 1e8;
  return env;
}

TEST(DesignSpace, SweepCoversBothPoliciesAndMeetsAtT2) {
  auto points = SweepDesignSpace(BaseConfig(), /*t_max=*/16.0);
  ASSERT_FALSE(points.empty());

  const CurvePoint* lev2 = nullptr;
  const CurvePoint* tier2 = nullptr;
  for (const auto& p : points) {
    if (p.size_ratio == 2.0) {
      if (p.policy == MergePolicy::kLeveling) lev2 = &p;
      if (p.policy == MergePolicy::kTiering) tier2 = &p;
    }
  }
  ASSERT_NE(lev2, nullptr);
  ASSERT_NE(tier2, nullptr);
  // The two half-curves meet where T = 2 (Fig. 4).
  EXPECT_NEAR(lev2->lookup_cost, tier2->lookup_cost, 1e-9);
  EXPECT_NEAR(lev2->update_cost, tier2->update_cost, 1e-9);
}

TEST(DesignSpace, MonkeyCurveDominatesBaselineCurve) {
  // Fig. 8: at every point of the continuum the Monkey allocation is at
  // least as good as uniform.
  for (const auto& p : SweepDesignSpace(BaseConfig(), 32.0)) {
    EXPECT_LE(p.lookup_cost, p.baseline_lookup_cost + 1e-9)
        << "T=" << p.size_ratio;
  }
}

TEST(DesignSpace, TradeoffDirectionAlongEachBranch) {
  // Along leveling, update cost trends up with T; along tiering it trends
  // down (Fig. 4). The ceil() in the level count makes the curves sawtooth
  // locally, so compare the branch endpoints, which is the paper's claim.
  auto points = SweepDesignSpace(BaseConfig(), 32.0);
  const CurvePoint* lev_first = nullptr;
  const CurvePoint* lev_last = nullptr;
  const CurvePoint* tier_first = nullptr;
  const CurvePoint* tier_last = nullptr;
  for (const auto& p : points) {
    if (p.policy == MergePolicy::kLeveling) {
      if (lev_first == nullptr) lev_first = &p;
      lev_last = &p;
    } else {
      if (tier_first == nullptr) tier_first = &p;
      tier_last = &p;
    }
  }
  ASSERT_NE(lev_first, nullptr);
  ASSERT_NE(tier_first, nullptr);
  EXPECT_GT(lev_last->update_cost, lev_first->update_cost);
  EXPECT_LT(tier_last->update_cost, tier_first->update_cost);
  // And the lookup side moves the other way on each branch.
  EXPECT_LE(lev_last->baseline_lookup_cost,
            lev_first->baseline_lookup_cost + 1e-12);
  EXPECT_GE(tier_last->baseline_lookup_cost,
            tier_first->baseline_lookup_cost - 1e-12);
}

TEST(DesignSpace, StateOfTheArtStoresAreOffThePareto) {
  // Fig. 1: every named store's default tuning has a strictly worse lookup
  // cost than the Monkey allocation at the same (policy, T, memory).
  const Environment env = BaseEnv();
  for (const StoreConfig& store : StateOfTheArtStores()) {
    const CurvePoint p = EvaluateStore(store, env);
    EXPECT_GT(p.baseline_lookup_cost, p.lookup_cost)
        << store.name << " should be dominated by Monkey";
  }
}

TEST(DesignSpace, StoreListCoversThePaperFigure) {
  auto stores = StateOfTheArtStores();
  ASSERT_GE(stores.size(), 6u);
  bool has_leveldb = false, has_cassandra = false;
  for (const auto& s : stores) {
    if (s.name == "LevelDB") {
      has_leveldb = true;
      EXPECT_EQ(s.policy, MergePolicy::kLeveling);
      EXPECT_EQ(s.size_ratio, 10.0);
    }
    if (s.name == "Cassandra") {
      has_cassandra = true;
      EXPECT_EQ(s.policy, MergePolicy::kTiering);
    }
  }
  EXPECT_TRUE(has_leveldb);
  EXPECT_TRUE(has_cassandra);
}

TEST(WhatIf, MoreMemoryNeverHurtsThroughput) {
  const Environment env = BaseEnv();
  Workload w;
  w.zero_result_lookups = 0.5;
  w.updates = 0.5;
  const WhatIfResult result =
      WhatIfMemoryChanges(env, w, env.total_memory_bits * 4);
  EXPECT_GE(result.after.throughput, result.before.throughput * 0.999);
}

TEST(WhatIf, WorkloadShiftMovesTheTuning) {
  const Environment env = BaseEnv();
  Workload reads;
  reads.zero_result_lookups = 0.9;
  reads.updates = 0.1;
  Workload writes;
  writes.zero_result_lookups = 0.1;
  writes.updates = 0.9;
  const WhatIfResult result = WhatIfWorkloadChanges(env, reads, writes);
  // Moving toward writes should lower the chosen update cost.
  EXPECT_LE(result.after.update_cost, result.before.update_cost + 1e-12);
}

TEST(WhatIf, DataGrowthIsHandled) {
  const Environment env = BaseEnv();
  Workload w;
  w.zero_result_lookups = 0.5;
  w.updates = 0.5;
  const WhatIfResult result =
      WhatIfDataGrows(env, w, env.num_entries * 16, env.entry_size_bits);
  ASSERT_TRUE(result.after.feasible);
  // 16x the data with the same memory: operations can only get costlier.
  EXPECT_GE(result.after.avg_op_cost, result.before.avg_op_cost - 1e-12);
}

TEST(WhatIf, FlashRaisesThroughput) {
  const Environment env = BaseEnv();
  Workload w;
  w.zero_result_lookups = 0.5;
  w.updates = 0.5;
  const WhatIfResult result =
      WhatIfStorageChanges(env, w, /*read_seconds=*/100e-6,
                           /*phi=*/2.0);
  EXPECT_GT(result.after.throughput, result.before.throughput);
}

}  // namespace
}  // namespace monkey
}  // namespace monkeydb
