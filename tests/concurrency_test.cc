// Thread-safety smoke tests: writers serialize behind the engine's internal
// mutex while readers run lock-free against published snapshots; concurrent
// callers must observe consistent results and never corrupt state.
// (Heavier scenarios live in concurrent_stress_test.cc.)

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

TEST(Concurrency, ParallelWritersDistinctKeyRanges) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 16 << 10;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < kPerThread; i++) {
        const std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        const std::string val = "v" + std::to_string(i);
        if (!db->Put(wo, key, val).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  ReadOptions ro;
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 97) {
      const std::string key =
          "t" + std::to_string(t) + "_" + std::to_string(i);
      ASSERT_TRUE(db->Get(ro, key, &value).ok()) << key;
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
  EXPECT_EQ(db->GetStats().total_disk_entries + db->GetStats().memtable_entries,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(Concurrency, ReadersConcurrentWithWriter) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 16 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "stable" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "sv").ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      Random rng(t + 1);
      ReadOptions ro;
      std::string value;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key =
            "stable" + std::to_string(rng.Uniform(5000));
        Status s = db->Get(ro, key, &value);
        if (!s.ok() || value != "sv") read_errors.fetch_add(1);
      }
    });
  }

  // Writer churns new keys, forcing flushes and compactions while the
  // readers run.
  for (int i = 0; i < 20000; i++) {
    const std::string key = "churn" + std::to_string(i);
    const std::string payload = std::string(32, 'c');
    ASSERT_TRUE(
        db->Put(wo, key, payload).ok());
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(read_errors.load(), 0);
}

// Same reader/writer pattern as above, but with the background flush
// pipeline switched on: readers must stay consistent while memtables
// freeze and the worker merges runs underneath them.
TEST(Concurrency, ReadersUnderBackgroundCompactionChurn) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  options.background_compaction = true;
  options.max_immutable_memtables = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    const std::string key = "stable" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "sv").ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      Random rng(t + 1);
      ReadOptions ro;
      std::string value;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key =
            "stable" + std::to_string(rng.Uniform(5000));
        Status s = db->Get(ro, key, &value);
        if (!s.ok() || value != "sv") read_errors.fetch_add(1);
      }
    });
  }

  for (int i = 0; i < 20000; i++) {
    const std::string key = "churn" + std::to_string(i);
    const std::string payload = std::string(32, 'c');
    ASSERT_TRUE(
        db->Put(wo, key, payload).ok());
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(read_errors.load(), 0);

  // Drained, the accounting must balance: nothing acked was lost.
  ASSERT_TRUE(db->Flush().ok());
  const DbStats stats = db->GetStats();
  EXPECT_EQ(stats.memtable_entries, 0u);
  EXPECT_EQ(stats.total_disk_entries, 25000u);
}

TEST(Concurrency, SnapshotReadersDuringChurn) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 8 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 500; i++) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db->Put(wo, key, "gen0").ok());
  }
  const Snapshot* snap = db->GetSnapshot();

  std::atomic<int> errors{0};
  std::thread reader([&] {
    ReadOptions ro;
    ro.snapshot = snap;
    Random rng(9);
    std::string value;
    for (int i = 0; i < 3000; i++) {
      const std::string key = "k" + std::to_string(rng.Uniform(500));
      Status s = db->Get(ro, key, &value);
      if (!s.ok() || value != "gen0") errors.fetch_add(1);
    }
  });
  for (int gen = 1; gen <= 10; gen++) {
    for (int i = 0; i < 500; i++) {
      const std::string key = "k" + std::to_string(i);
      const std::string val = "gen" + std::to_string(gen);
      ASSERT_TRUE(db->Put(wo, key,
                          val)
                      .ok());
    }
  }
  reader.join();
  EXPECT_EQ(errors.load(), 0);
  db->ReleaseSnapshot(snap);
}

}  // namespace
}  // namespace monkeydb
