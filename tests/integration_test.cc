// Integration tests tying the engine to the paper's claims: measured
// I/Os-per-lookup for Monkey vs the uniform baseline under equal memory,
// model-vs-measured agreement, and block-cache interplay.

#include <gtest/gtest.h>

#include <cmath>

#include "io/counting_env.h"
#include "io/env.h"
#include "lsm/db.h"
#include "monkey/cost_model.h"
#include "monkey/monkey_db.h"
#include "util/random.h"

namespace monkeydb {
namespace {

constexpr size_t kPageSize = 4096;

struct FilledDb {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<IoStats> stats;
  std::unique_ptr<CountingEnv> env;
  std::unique_ptr<DB> db;
};

// Loads `n` unique keys (worst-case update pattern) with the given filter
// policy and returns the instrumented DB.
FilledDb Fill(int n, double bits_per_entry, bool monkey_filters,
              MergePolicy policy = MergePolicy::kLeveling,
              double size_ratio = 2.0, BlockCache* cache = nullptr) {
  FilledDb f;
  f.base_env = NewMemEnv();
  f.stats = std::make_unique<IoStats>();
  f.env = std::make_unique<CountingEnv>(f.base_env.get(), f.stats.get(),
                                        kPageSize);
  DbOptions options;
  options.env = f.env.get();
  options.merge_policy = policy;
  options.size_ratio = size_ratio;
  options.buffer_size_bytes = 32 << 10;
  options.bits_per_entry = bits_per_entry;
  options.page_size = kPageSize;
  options.block_cache = cache;
  options.expected_entries = n;
  if (monkey_filters) options.fpr_policy = monkey::NewMonkeyFprPolicy();

  EXPECT_TRUE(DB::Open(options, "/db", &f.db).ok());
  WriteOptions wo;
  for (int i = 0; i < n; i++) {
    char key[24];
    snprintf(key, sizeof(key), "user%012d", i);
    const std::string payload = std::string(48, 'v');
    EXPECT_TRUE(f.db->Put(wo, key, payload).ok());
  }
  EXPECT_TRUE(f.db->Flush().ok());
  return f;
}

// Issues `lookups` zero-result point lookups uniformly *inside* the key
// range (an existing key plus a suffix, so fence pointers cannot exclude
// the probe and only Bloom filters stand between the lookup and an I/O —
// the paper's zero-result workload). Returns mean read I/Os per lookup.
double MeasureZeroResultIo(FilledDb* f, int lookups, int n) {
  ReadOptions ro;
  Random rng(4242);
  const auto before = f->stats->Snapshot();
  std::string value;
  for (int i = 0; i < lookups; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%012llux",
             static_cast<unsigned long long>(rng.Uniform(n)));
    EXPECT_TRUE(f->db->Get(ro, key, &value).IsNotFound());
  }
  const auto delta = f->stats->Snapshot() - before;
  return static_cast<double>(delta.read_ios) / lookups;
}

TEST(Integration, MonkeyBeatsUniformOnZeroResultLookups) {
  // Same data, same total filter memory: Monkey's allocation must yield
  // fewer I/Os per zero-result lookup (the paper's headline result).
  const int n = 30000;
  const double bpe = 4.0;
  auto uniform = Fill(n, bpe, /*monkey_filters=*/false);
  auto monkey = Fill(n, bpe, /*monkey_filters=*/true);

  // Memory parity check: Monkey must not secretly use more filter bits.
  const uint64_t uniform_bits = uniform.db->GetStats().filter_bits_total;
  const uint64_t monkey_bits = monkey.db->GetStats().filter_bits_total;
  EXPECT_LT(monkey_bits, uniform_bits * 1.10)
      << "Monkey must respect the memory budget";

  const double uniform_io = MeasureZeroResultIo(&uniform, 4000, n);
  const double monkey_io = MeasureZeroResultIo(&monkey, 4000, n);
  EXPECT_LT(monkey_io, uniform_io)
      << "uniform=" << uniform_io << " monkey=" << monkey_io;
}

TEST(Integration, MeasuredLookupCostTracksTheModel) {
  const int n = 30000;
  const double bpe = 5.0;
  auto monkey = Fill(n, bpe, true);
  auto uniform = Fill(n, bpe, false);

  const DbStats stats = monkey.db->GetStats();

  monkey::DesignPoint d;
  d.policy = MergePolicy::kLeveling;
  d.size_ratio = 2.0;
  d.num_entries = static_cast<double>(stats.total_disk_entries);
  d.entry_size_bits = (12 + 48) * 8.0;
  d.buffer_bits = (32 << 10) * 8.0;
  d.filter_bits = bpe * d.num_entries;
  d.entries_per_page = kPageSize * 8.0 / d.entry_size_bits;

  const double model_r = monkey::ZeroResultLookupCost(d);
  const double measured_r = MeasureZeroResultIo(&monkey, 4000, n);
  // The run geometry in the live tree only approximates the model's ideal
  // (levels partially filled), so allow a 2.5x band — the point is the
  // order of magnitude and the ranking vs baseline.
  EXPECT_LT(measured_r, std::max(model_r * 2.5, 0.05));

  const double model_rart = monkey::BaselineZeroResultLookupCost(d);
  const double measured_rart = MeasureZeroResultIo(&uniform, 4000, n);
  EXPECT_LT(measured_rart, std::max(model_rart * 2.5, 0.05));
  // Model ordering agrees with measurement.
  EXPECT_LT(model_r, model_rart);
}

TEST(Integration, NonZeroResultLookupsCostAboutOneIo) {
  const int n = 20000;
  auto monkey = Fill(n, 8.0, true);
  ReadOptions ro;
  Random rng(7);
  const auto before = monkey.stats->Snapshot();
  std::string value;
  const int lookups = 2000;
  for (int i = 0; i < lookups; i++) {
    char key[24];
    snprintf(key, sizeof(key), "user%012llu",
             static_cast<unsigned long long>(rng.Uniform(n)));
    ASSERT_TRUE(monkey.db->Get(ro, key, &value).ok());
  }
  const auto delta = monkey.stats->Snapshot() - before;
  const double per_lookup =
      static_cast<double>(delta.read_ios) / lookups;
  // V = R - p_L + 1 ~ 1 with strong filters (Eq. 9): one data-page read.
  EXPECT_GE(per_lookup, 0.99);
  EXPECT_LE(per_lookup, 1.35);
}

TEST(Integration, BlockCacheEliminatesRepeatIo) {
  BlockCache cache(64 << 20);  // Larger than the dataset: everything fits.
  const int n = 20000;
  auto f = Fill(n, 8.0, true, MergePolicy::kLeveling, 2.0, &cache);
  ReadOptions ro;
  std::string value;

  // Warm the cache with one pass over a working set.
  for (int i = 0; i < 1000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "user%012d", i);
    ASSERT_TRUE(f.db->Get(ro, key, &value).ok());
  }
  // Second pass: all hits, no I/O.
  const auto before = f.stats->Snapshot();
  for (int i = 0; i < 1000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "user%012d", i);
    ASSERT_TRUE(f.db->Get(ro, key, &value).ok());
  }
  const auto delta = f.stats->Snapshot() - before;
  EXPECT_EQ(delta.read_ios, 0u);
  EXPECT_GT(cache.hits(), 900u);
}

TEST(Integration, UpdateCostScalesWithLevelsOverB) {
  // W = O(L/B * (T-1)/2) for leveling (Eq. 10): write I/Os per insert stay
  // within a small constant of the model across data sizes.
  for (int n : {10000, 40000}) {
    auto f = Fill(n, 5.0, true);
    const auto io = f.stats->Snapshot();
    const DbStats stats = f.db->GetStats();
    const double writes_per_entry =
        static_cast<double>(io.write_ios) / n;

    monkey::DesignPoint d;
    d.size_ratio = 2.0;
    d.num_entries = n;
    d.entry_size_bits = 60 * 8.0;
    d.buffer_bits = (32 << 10) * 8.0;
    d.filter_bits = 5.0 * n;
    d.entries_per_page = kPageSize / 68.0;  // Encoded entry ~68 bytes.
    const double model_w_writes =
        monkey::UpdateCost(d) / 2.0;  // Model counts read+write; halve.

    EXPECT_LT(writes_per_entry, model_w_writes * 4.0 + 0.2)
        << "n=" << n << " deepest=" << stats.deepest_level;
    EXPECT_GT(writes_per_entry, model_w_writes * 0.2);
  }
}

TEST(Integration, TieringWritesLessThanLeveling) {
  // Fig. 4 / Fig. 11E: at the same T > 2, tiering's write amplification is
  // lower than leveling's.
  const int n = 30000;
  auto lev = Fill(n, 5.0, true, MergePolicy::kLeveling, 4.0);
  auto tier = Fill(n, 5.0, true, MergePolicy::kTiering, 4.0);
  const double lev_writes =
      static_cast<double>(lev.stats->Snapshot().write_ios);
  const double tier_writes =
      static_cast<double>(tier.stats->Snapshot().write_ios);
  EXPECT_LT(tier_writes, lev_writes);

  // ...and tiering's zero-result lookups cost more I/Os (more runs).
  const double lev_r = MeasureZeroResultIo(&lev, 2000, n);
  const double tier_r = MeasureZeroResultIo(&tier, 2000, n);
  EXPECT_LE(lev_r, tier_r + 0.05);
}

TEST(Integration, FilterMemoryReportedPerLevelIsGeometric) {
  // Monkey gives shallower levels more bits per entry: check the realized
  // filters in the live tree.
  auto f = Fill(60000, 6.0, true, MergePolicy::kLeveling, 2.0);
  const DbStats stats = f.db->GetStats();
  ASSERT_GE(stats.entries_per_level.size(), 3u);
  // Find two adjacent non-empty levels and compare bits-per-entry.
  int checked = 0;
  for (size_t i = 0; i + 1 < stats.entries_per_level.size(); i++) {
    if (stats.entries_per_level[i] == 0 ||
        stats.entries_per_level[i + 1] == 0) {
      continue;
    }
    const double bpe_shallow =
        static_cast<double>(stats.filter_bits_per_level[i]) /
        stats.entries_per_level[i];
    const double bpe_deep =
        static_cast<double>(stats.filter_bits_per_level[i + 1]) /
        stats.entries_per_level[i + 1];
    EXPECT_GT(bpe_shallow, bpe_deep * 1.05)
        << "levels " << i + 1 << " vs " << i + 2;
    checked++;
  }
  EXPECT_GE(checked, 1);
}

}  // namespace
}  // namespace monkeydb
