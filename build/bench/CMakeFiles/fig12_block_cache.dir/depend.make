# Empty dependencies file for fig12_block_cache.
# This may be replaced when dependencies are built.
