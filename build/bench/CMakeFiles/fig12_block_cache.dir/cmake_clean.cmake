file(REMOVE_RECURSE
  "CMakeFiles/fig12_block_cache.dir/fig12_block_cache.cc.o"
  "CMakeFiles/fig12_block_cache.dir/fig12_block_cache.cc.o.d"
  "fig12_block_cache"
  "fig12_block_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_block_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
