file(REMOVE_RECURSE
  "CMakeFiles/fig07_lookup_vs_memory.dir/fig07_lookup_vs_memory.cc.o"
  "CMakeFiles/fig07_lookup_vs_memory.dir/fig07_lookup_vs_memory.cc.o.d"
  "fig07_lookup_vs_memory"
  "fig07_lookup_vs_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_lookup_vs_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
