# Empty dependencies file for fig07_lookup_vs_memory.
# This may be replaced when dependencies are built.
