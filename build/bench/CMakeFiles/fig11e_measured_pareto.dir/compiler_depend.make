# Empty compiler generated dependencies file for fig11e_measured_pareto.
# This may be replaced when dependencies are built.
