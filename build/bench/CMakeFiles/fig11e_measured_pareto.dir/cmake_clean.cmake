file(REMOVE_RECURSE
  "CMakeFiles/fig11e_measured_pareto.dir/fig11e_measured_pareto.cc.o"
  "CMakeFiles/fig11e_measured_pareto.dir/fig11e_measured_pareto.cc.o.d"
  "fig11e_measured_pareto"
  "fig11e_measured_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11e_measured_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
