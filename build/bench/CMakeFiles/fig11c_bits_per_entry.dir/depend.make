# Empty dependencies file for fig11c_bits_per_entry.
# This may be replaced when dependencies are built.
