file(REMOVE_RECURSE
  "CMakeFiles/fig11c_bits_per_entry.dir/fig11c_bits_per_entry.cc.o"
  "CMakeFiles/fig11c_bits_per_entry.dir/fig11c_bits_per_entry.cc.o.d"
  "fig11c_bits_per_entry"
  "fig11c_bits_per_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_bits_per_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
