file(REMOVE_RECURSE
  "CMakeFiles/fig10_autotune_walk.dir/fig10_autotune_walk.cc.o"
  "CMakeFiles/fig10_autotune_walk.dir/fig10_autotune_walk.cc.o.d"
  "fig10_autotune_walk"
  "fig10_autotune_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_autotune_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
