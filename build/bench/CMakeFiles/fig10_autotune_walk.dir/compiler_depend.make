# Empty compiler generated dependencies file for fig10_autotune_walk.
# This may be replaced when dependencies are built.
