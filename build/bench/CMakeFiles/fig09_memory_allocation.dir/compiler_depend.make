# Empty compiler generated dependencies file for fig09_memory_allocation.
# This may be replaced when dependencies are built.
