file(REMOVE_RECURSE
  "CMakeFiles/fig09_memory_allocation.dir/fig09_memory_allocation.cc.o"
  "CMakeFiles/fig09_memory_allocation.dir/fig09_memory_allocation.cc.o.d"
  "fig09_memory_allocation"
  "fig09_memory_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_memory_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
