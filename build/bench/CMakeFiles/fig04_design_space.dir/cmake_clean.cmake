file(REMOVE_RECURSE
  "CMakeFiles/fig04_design_space.dir/fig04_design_space.cc.o"
  "CMakeFiles/fig04_design_space.dir/fig04_design_space.cc.o.d"
  "fig04_design_space"
  "fig04_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
