# Empty dependencies file for fig04_design_space.
# This may be replaced when dependencies are built.
