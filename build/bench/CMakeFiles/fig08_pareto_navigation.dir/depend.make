# Empty dependencies file for fig08_pareto_navigation.
# This may be replaced when dependencies are built.
