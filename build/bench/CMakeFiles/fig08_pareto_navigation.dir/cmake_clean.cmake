file(REMOVE_RECURSE
  "CMakeFiles/fig08_pareto_navigation.dir/fig08_pareto_navigation.cc.o"
  "CMakeFiles/fig08_pareto_navigation.dir/fig08_pareto_navigation.cc.o.d"
  "fig08_pareto_navigation"
  "fig08_pareto_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pareto_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
