file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_policies.dir/ablation_merge_policies.cc.o"
  "CMakeFiles/ablation_merge_policies.dir/ablation_merge_policies.cc.o.d"
  "ablation_merge_policies"
  "ablation_merge_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
