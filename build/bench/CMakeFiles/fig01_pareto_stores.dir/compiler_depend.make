# Empty compiler generated dependencies file for fig01_pareto_stores.
# This may be replaced when dependencies are built.
