file(REMOVE_RECURSE
  "CMakeFiles/fig01_pareto_stores.dir/fig01_pareto_stores.cc.o"
  "CMakeFiles/fig01_pareto_stores.dir/fig01_pareto_stores.cc.o.d"
  "fig01_pareto_stores"
  "fig01_pareto_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pareto_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
