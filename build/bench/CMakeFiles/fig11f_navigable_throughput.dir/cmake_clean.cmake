file(REMOVE_RECURSE
  "CMakeFiles/fig11f_navigable_throughput.dir/fig11f_navigable_throughput.cc.o"
  "CMakeFiles/fig11f_navigable_throughput.dir/fig11f_navigable_throughput.cc.o.d"
  "fig11f_navigable_throughput"
  "fig11f_navigable_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11f_navigable_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
