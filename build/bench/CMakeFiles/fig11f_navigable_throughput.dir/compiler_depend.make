# Empty compiler generated dependencies file for fig11f_navigable_throughput.
# This may be replaced when dependencies are built.
