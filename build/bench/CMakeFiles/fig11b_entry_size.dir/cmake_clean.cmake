file(REMOVE_RECURSE
  "CMakeFiles/fig11b_entry_size.dir/fig11b_entry_size.cc.o"
  "CMakeFiles/fig11b_entry_size.dir/fig11b_entry_size.cc.o.d"
  "fig11b_entry_size"
  "fig11b_entry_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_entry_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
