# Empty dependencies file for fig11b_entry_size.
# This may be replaced when dependencies are built.
