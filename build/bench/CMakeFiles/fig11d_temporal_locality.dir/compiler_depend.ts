# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11d_temporal_locality.
