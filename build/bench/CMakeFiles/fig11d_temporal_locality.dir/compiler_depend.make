# Empty compiler generated dependencies file for fig11d_temporal_locality.
# This may be replaced when dependencies are built.
