file(REMOVE_RECURSE
  "CMakeFiles/fig11d_temporal_locality.dir/fig11d_temporal_locality.cc.o"
  "CMakeFiles/fig11d_temporal_locality.dir/fig11d_temporal_locality.cc.o.d"
  "fig11d_temporal_locality"
  "fig11d_temporal_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11d_temporal_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
