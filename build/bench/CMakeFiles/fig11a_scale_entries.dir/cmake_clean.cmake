file(REMOVE_RECURSE
  "CMakeFiles/fig11a_scale_entries.dir/fig11a_scale_entries.cc.o"
  "CMakeFiles/fig11a_scale_entries.dir/fig11a_scale_entries.cc.o.d"
  "fig11a_scale_entries"
  "fig11a_scale_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_scale_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
