# Empty dependencies file for fig11a_scale_entries.
# This may be replaced when dependencies are built.
