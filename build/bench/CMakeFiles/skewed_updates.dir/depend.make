# Empty dependencies file for skewed_updates.
# This may be replaced when dependencies are built.
