file(REMOVE_RECURSE
  "CMakeFiles/skewed_updates.dir/skewed_updates.cc.o"
  "CMakeFiles/skewed_updates.dir/skewed_updates.cc.o.d"
  "skewed_updates"
  "skewed_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
