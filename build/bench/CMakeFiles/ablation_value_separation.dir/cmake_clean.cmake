file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_separation.dir/ablation_value_separation.cc.o"
  "CMakeFiles/ablation_value_separation.dir/ablation_value_separation.cc.o.d"
  "ablation_value_separation"
  "ablation_value_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
