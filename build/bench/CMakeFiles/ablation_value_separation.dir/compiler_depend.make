# Empty compiler generated dependencies file for ablation_value_separation.
# This may be replaced when dependencies are built.
