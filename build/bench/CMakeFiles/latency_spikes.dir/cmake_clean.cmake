file(REMOVE_RECURSE
  "CMakeFiles/latency_spikes.dir/latency_spikes.cc.o"
  "CMakeFiles/latency_spikes.dir/latency_spikes.cc.o.d"
  "latency_spikes"
  "latency_spikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_spikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
