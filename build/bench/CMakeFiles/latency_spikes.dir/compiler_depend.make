# Empty compiler generated dependencies file for latency_spikes.
# This may be replaced when dependencies are built.
