file(REMOVE_RECURSE
  "CMakeFiles/eq11_range_lookups.dir/eq11_range_lookups.cc.o"
  "CMakeFiles/eq11_range_lookups.dir/eq11_range_lookups.cc.o.d"
  "eq11_range_lookups"
  "eq11_range_lookups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq11_range_lookups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
