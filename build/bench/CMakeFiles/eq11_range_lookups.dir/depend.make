# Empty dependencies file for eq11_range_lookups.
# This may be replaced when dependencies are built.
