# Empty dependencies file for table1_asymptotics.
# This may be replaced when dependencies are built.
