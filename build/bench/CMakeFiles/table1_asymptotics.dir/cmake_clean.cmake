file(REMOVE_RECURSE
  "CMakeFiles/table1_asymptotics.dir/table1_asymptotics.cc.o"
  "CMakeFiles/table1_asymptotics.dir/table1_asymptotics.cc.o.d"
  "table1_asymptotics"
  "table1_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
