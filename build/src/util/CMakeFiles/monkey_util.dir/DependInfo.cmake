
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/util/CMakeFiles/monkey_util.dir/arena.cc.o" "gcc" "src/util/CMakeFiles/monkey_util.dir/arena.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/util/CMakeFiles/monkey_util.dir/coding.cc.o" "gcc" "src/util/CMakeFiles/monkey_util.dir/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/util/CMakeFiles/monkey_util.dir/comparator.cc.o" "gcc" "src/util/CMakeFiles/monkey_util.dir/comparator.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/util/CMakeFiles/monkey_util.dir/hash.cc.o" "gcc" "src/util/CMakeFiles/monkey_util.dir/hash.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/monkey_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/monkey_util.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
