file(REMOVE_RECURSE
  "CMakeFiles/monkey_util.dir/arena.cc.o"
  "CMakeFiles/monkey_util.dir/arena.cc.o.d"
  "CMakeFiles/monkey_util.dir/coding.cc.o"
  "CMakeFiles/monkey_util.dir/coding.cc.o.d"
  "CMakeFiles/monkey_util.dir/comparator.cc.o"
  "CMakeFiles/monkey_util.dir/comparator.cc.o.d"
  "CMakeFiles/monkey_util.dir/hash.cc.o"
  "CMakeFiles/monkey_util.dir/hash.cc.o.d"
  "CMakeFiles/monkey_util.dir/status.cc.o"
  "CMakeFiles/monkey_util.dir/status.cc.o.d"
  "libmonkey_util.a"
  "libmonkey_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
