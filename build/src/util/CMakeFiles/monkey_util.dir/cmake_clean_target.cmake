file(REMOVE_RECURSE
  "libmonkey_util.a"
)
