# Empty compiler generated dependencies file for monkey_util.
# This may be replaced when dependencies are built.
