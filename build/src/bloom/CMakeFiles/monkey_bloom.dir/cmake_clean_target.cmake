file(REMOVE_RECURSE
  "libmonkey_bloom.a"
)
