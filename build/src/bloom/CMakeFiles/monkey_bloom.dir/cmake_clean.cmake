file(REMOVE_RECURSE
  "CMakeFiles/monkey_bloom.dir/blocked_bloom_filter.cc.o"
  "CMakeFiles/monkey_bloom.dir/blocked_bloom_filter.cc.o.d"
  "CMakeFiles/monkey_bloom.dir/bloom_filter.cc.o"
  "CMakeFiles/monkey_bloom.dir/bloom_filter.cc.o.d"
  "libmonkey_bloom.a"
  "libmonkey_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
