# Empty dependencies file for monkey_bloom.
# This may be replaced when dependencies are built.
