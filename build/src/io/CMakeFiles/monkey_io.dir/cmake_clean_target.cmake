file(REMOVE_RECURSE
  "libmonkey_io.a"
)
