
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/block_cache.cc" "src/io/CMakeFiles/monkey_io.dir/block_cache.cc.o" "gcc" "src/io/CMakeFiles/monkey_io.dir/block_cache.cc.o.d"
  "/root/repo/src/io/counting_env.cc" "src/io/CMakeFiles/monkey_io.dir/counting_env.cc.o" "gcc" "src/io/CMakeFiles/monkey_io.dir/counting_env.cc.o.d"
  "/root/repo/src/io/fault_env.cc" "src/io/CMakeFiles/monkey_io.dir/fault_env.cc.o" "gcc" "src/io/CMakeFiles/monkey_io.dir/fault_env.cc.o.d"
  "/root/repo/src/io/mem_env.cc" "src/io/CMakeFiles/monkey_io.dir/mem_env.cc.o" "gcc" "src/io/CMakeFiles/monkey_io.dir/mem_env.cc.o.d"
  "/root/repo/src/io/posix_env.cc" "src/io/CMakeFiles/monkey_io.dir/posix_env.cc.o" "gcc" "src/io/CMakeFiles/monkey_io.dir/posix_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/monkey_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
