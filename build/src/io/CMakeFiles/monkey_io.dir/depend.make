# Empty dependencies file for monkey_io.
# This may be replaced when dependencies are built.
