file(REMOVE_RECURSE
  "CMakeFiles/monkey_io.dir/block_cache.cc.o"
  "CMakeFiles/monkey_io.dir/block_cache.cc.o.d"
  "CMakeFiles/monkey_io.dir/counting_env.cc.o"
  "CMakeFiles/monkey_io.dir/counting_env.cc.o.d"
  "CMakeFiles/monkey_io.dir/fault_env.cc.o"
  "CMakeFiles/monkey_io.dir/fault_env.cc.o.d"
  "CMakeFiles/monkey_io.dir/mem_env.cc.o"
  "CMakeFiles/monkey_io.dir/mem_env.cc.o.d"
  "CMakeFiles/monkey_io.dir/posix_env.cc.o"
  "CMakeFiles/monkey_io.dir/posix_env.cc.o.d"
  "libmonkey_io.a"
  "libmonkey_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
