file(REMOVE_RECURSE
  "libmonkey_memtable.a"
)
