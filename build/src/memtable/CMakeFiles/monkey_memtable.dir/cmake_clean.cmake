file(REMOVE_RECURSE
  "CMakeFiles/monkey_memtable.dir/memtable.cc.o"
  "CMakeFiles/monkey_memtable.dir/memtable.cc.o.d"
  "libmonkey_memtable.a"
  "libmonkey_memtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_memtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
