# Empty compiler generated dependencies file for monkey_memtable.
# This may be replaced when dependencies are built.
