file(REMOVE_RECURSE
  "libmonkey_lsm.a"
)
