file(REMOVE_RECURSE
  "CMakeFiles/monkey_lsm.dir/db.cc.o"
  "CMakeFiles/monkey_lsm.dir/db.cc.o.d"
  "CMakeFiles/monkey_lsm.dir/db_iterator.cc.o"
  "CMakeFiles/monkey_lsm.dir/db_iterator.cc.o.d"
  "CMakeFiles/monkey_lsm.dir/fpr_policy.cc.o"
  "CMakeFiles/monkey_lsm.dir/fpr_policy.cc.o.d"
  "CMakeFiles/monkey_lsm.dir/merging_iterator.cc.o"
  "CMakeFiles/monkey_lsm.dir/merging_iterator.cc.o.d"
  "CMakeFiles/monkey_lsm.dir/value_log.cc.o"
  "CMakeFiles/monkey_lsm.dir/value_log.cc.o.d"
  "CMakeFiles/monkey_lsm.dir/version.cc.o"
  "CMakeFiles/monkey_lsm.dir/version.cc.o.d"
  "CMakeFiles/monkey_lsm.dir/wal.cc.o"
  "CMakeFiles/monkey_lsm.dir/wal.cc.o.d"
  "libmonkey_lsm.a"
  "libmonkey_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
