# Empty compiler generated dependencies file for monkey_lsm.
# This may be replaced when dependencies are built.
