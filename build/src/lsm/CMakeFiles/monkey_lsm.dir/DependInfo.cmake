
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/db.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/db.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/db.cc.o.d"
  "/root/repo/src/lsm/db_iterator.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/db_iterator.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/db_iterator.cc.o.d"
  "/root/repo/src/lsm/fpr_policy.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/fpr_policy.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/fpr_policy.cc.o.d"
  "/root/repo/src/lsm/merging_iterator.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/merging_iterator.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/merging_iterator.cc.o.d"
  "/root/repo/src/lsm/value_log.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/value_log.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/value_log.cc.o.d"
  "/root/repo/src/lsm/version.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/version.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/version.cc.o.d"
  "/root/repo/src/lsm/wal.cc" "src/lsm/CMakeFiles/monkey_lsm.dir/wal.cc.o" "gcc" "src/lsm/CMakeFiles/monkey_lsm.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/monkey_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/monkey_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/monkey_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/memtable/CMakeFiles/monkey_memtable.dir/DependInfo.cmake"
  "/root/repo/build/src/sstable/CMakeFiles/monkey_sstable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
