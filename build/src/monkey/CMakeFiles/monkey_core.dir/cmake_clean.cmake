file(REMOVE_RECURSE
  "CMakeFiles/monkey_core.dir/cost_model.cc.o"
  "CMakeFiles/monkey_core.dir/cost_model.cc.o.d"
  "CMakeFiles/monkey_core.dir/design_space.cc.o"
  "CMakeFiles/monkey_core.dir/design_space.cc.o.d"
  "CMakeFiles/monkey_core.dir/fpr_allocator.cc.o"
  "CMakeFiles/monkey_core.dir/fpr_allocator.cc.o.d"
  "CMakeFiles/monkey_core.dir/monkey_db.cc.o"
  "CMakeFiles/monkey_core.dir/monkey_db.cc.o.d"
  "CMakeFiles/monkey_core.dir/tuner.cc.o"
  "CMakeFiles/monkey_core.dir/tuner.cc.o.d"
  "CMakeFiles/monkey_core.dir/workload_monitor.cc.o"
  "CMakeFiles/monkey_core.dir/workload_monitor.cc.o.d"
  "libmonkey_core.a"
  "libmonkey_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
