
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monkey/cost_model.cc" "src/monkey/CMakeFiles/monkey_core.dir/cost_model.cc.o" "gcc" "src/monkey/CMakeFiles/monkey_core.dir/cost_model.cc.o.d"
  "/root/repo/src/monkey/design_space.cc" "src/monkey/CMakeFiles/monkey_core.dir/design_space.cc.o" "gcc" "src/monkey/CMakeFiles/monkey_core.dir/design_space.cc.o.d"
  "/root/repo/src/monkey/fpr_allocator.cc" "src/monkey/CMakeFiles/monkey_core.dir/fpr_allocator.cc.o" "gcc" "src/monkey/CMakeFiles/monkey_core.dir/fpr_allocator.cc.o.d"
  "/root/repo/src/monkey/monkey_db.cc" "src/monkey/CMakeFiles/monkey_core.dir/monkey_db.cc.o" "gcc" "src/monkey/CMakeFiles/monkey_core.dir/monkey_db.cc.o.d"
  "/root/repo/src/monkey/tuner.cc" "src/monkey/CMakeFiles/monkey_core.dir/tuner.cc.o" "gcc" "src/monkey/CMakeFiles/monkey_core.dir/tuner.cc.o.d"
  "/root/repo/src/monkey/workload_monitor.cc" "src/monkey/CMakeFiles/monkey_core.dir/workload_monitor.cc.o" "gcc" "src/monkey/CMakeFiles/monkey_core.dir/workload_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsm/CMakeFiles/monkey_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/memtable/CMakeFiles/monkey_memtable.dir/DependInfo.cmake"
  "/root/repo/build/src/sstable/CMakeFiles/monkey_sstable.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/monkey_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/monkey_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/monkey_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
