file(REMOVE_RECURSE
  "libmonkey_core.a"
)
