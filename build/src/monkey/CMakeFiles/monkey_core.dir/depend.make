# Empty dependencies file for monkey_core.
# This may be replaced when dependencies are built.
