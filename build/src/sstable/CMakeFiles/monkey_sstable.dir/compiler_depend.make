# Empty compiler generated dependencies file for monkey_sstable.
# This may be replaced when dependencies are built.
