
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sstable/block.cc" "src/sstable/CMakeFiles/monkey_sstable.dir/block.cc.o" "gcc" "src/sstable/CMakeFiles/monkey_sstable.dir/block.cc.o.d"
  "/root/repo/src/sstable/format.cc" "src/sstable/CMakeFiles/monkey_sstable.dir/format.cc.o" "gcc" "src/sstable/CMakeFiles/monkey_sstable.dir/format.cc.o.d"
  "/root/repo/src/sstable/table_builder.cc" "src/sstable/CMakeFiles/monkey_sstable.dir/table_builder.cc.o" "gcc" "src/sstable/CMakeFiles/monkey_sstable.dir/table_builder.cc.o.d"
  "/root/repo/src/sstable/table_reader.cc" "src/sstable/CMakeFiles/monkey_sstable.dir/table_reader.cc.o" "gcc" "src/sstable/CMakeFiles/monkey_sstable.dir/table_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/monkey_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/monkey_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/monkey_bloom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
