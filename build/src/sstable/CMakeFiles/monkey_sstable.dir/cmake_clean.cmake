file(REMOVE_RECURSE
  "CMakeFiles/monkey_sstable.dir/block.cc.o"
  "CMakeFiles/monkey_sstable.dir/block.cc.o.d"
  "CMakeFiles/monkey_sstable.dir/format.cc.o"
  "CMakeFiles/monkey_sstable.dir/format.cc.o.d"
  "CMakeFiles/monkey_sstable.dir/table_builder.cc.o"
  "CMakeFiles/monkey_sstable.dir/table_builder.cc.o.d"
  "CMakeFiles/monkey_sstable.dir/table_reader.cc.o"
  "CMakeFiles/monkey_sstable.dir/table_reader.cc.o.d"
  "libmonkey_sstable.a"
  "libmonkey_sstable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_sstable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
