file(REMOVE_RECURSE
  "libmonkey_sstable.a"
)
