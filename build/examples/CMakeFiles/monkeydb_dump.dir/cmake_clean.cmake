file(REMOVE_RECURSE
  "CMakeFiles/monkeydb_dump.dir/monkeydb_dump.cpp.o"
  "CMakeFiles/monkeydb_dump.dir/monkeydb_dump.cpp.o.d"
  "monkeydb_dump"
  "monkeydb_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkeydb_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
