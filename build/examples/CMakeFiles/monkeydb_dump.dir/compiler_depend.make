# Empty compiler generated dependencies file for monkeydb_dump.
# This may be replaced when dependencies are built.
