file(REMOVE_RECURSE
  "CMakeFiles/ycsb_workloads.dir/ycsb_workloads.cpp.o"
  "CMakeFiles/ycsb_workloads.dir/ycsb_workloads.cpp.o.d"
  "ycsb_workloads"
  "ycsb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
