# Empty dependencies file for ycsb_workloads.
# This may be replaced when dependencies are built.
