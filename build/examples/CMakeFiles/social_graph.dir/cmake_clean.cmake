file(REMOVE_RECURSE
  "CMakeFiles/social_graph.dir/social_graph.cpp.o"
  "CMakeFiles/social_graph.dir/social_graph.cpp.o.d"
  "social_graph"
  "social_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
