# Empty dependencies file for social_graph.
# This may be replaced when dependencies are built.
