file(REMOVE_RECURSE
  "CMakeFiles/monkeydb_cli.dir/monkeydb_cli.cpp.o"
  "CMakeFiles/monkeydb_cli.dir/monkeydb_cli.cpp.o.d"
  "monkeydb_cli"
  "monkeydb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkeydb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
