# Empty dependencies file for monkeydb_cli.
# This may be replaced when dependencies are built.
