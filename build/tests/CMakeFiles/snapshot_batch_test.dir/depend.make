# Empty dependencies file for snapshot_batch_test.
# This may be replaced when dependencies are built.
