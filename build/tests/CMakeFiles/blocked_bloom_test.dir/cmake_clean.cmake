file(REMOVE_RECURSE
  "CMakeFiles/blocked_bloom_test.dir/blocked_bloom_test.cc.o"
  "CMakeFiles/blocked_bloom_test.dir/blocked_bloom_test.cc.o.d"
  "blocked_bloom_test"
  "blocked_bloom_test.pdb"
  "blocked_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
