# Empty dependencies file for blocked_bloom_test.
# This may be replaced when dependencies are built.
