file(REMOVE_RECURSE
  "CMakeFiles/adaptive_features_test.dir/adaptive_features_test.cc.o"
  "CMakeFiles/adaptive_features_test.dir/adaptive_features_test.cc.o.d"
  "adaptive_features_test"
  "adaptive_features_test.pdb"
  "adaptive_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
