# Empty dependencies file for monkey_db_test.
# This may be replaced when dependencies are built.
