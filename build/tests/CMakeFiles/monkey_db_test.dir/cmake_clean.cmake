file(REMOVE_RECURSE
  "CMakeFiles/monkey_db_test.dir/monkey_db_test.cc.o"
  "CMakeFiles/monkey_db_test.dir/monkey_db_test.cc.o.d"
  "monkey_db_test"
  "monkey_db_test.pdb"
  "monkey_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
