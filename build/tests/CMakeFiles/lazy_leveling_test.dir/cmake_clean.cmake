file(REMOVE_RECURSE
  "CMakeFiles/lazy_leveling_test.dir/lazy_leveling_test.cc.o"
  "CMakeFiles/lazy_leveling_test.dir/lazy_leveling_test.cc.o.d"
  "lazy_leveling_test"
  "lazy_leveling_test.pdb"
  "lazy_leveling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_leveling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
