# Empty dependencies file for fpr_allocator_test.
# This may be replaced when dependencies are built.
