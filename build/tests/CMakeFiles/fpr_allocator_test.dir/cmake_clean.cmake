file(REMOVE_RECURSE
  "CMakeFiles/fpr_allocator_test.dir/fpr_allocator_test.cc.o"
  "CMakeFiles/fpr_allocator_test.dir/fpr_allocator_test.cc.o.d"
  "fpr_allocator_test"
  "fpr_allocator_test.pdb"
  "fpr_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
