# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/coding_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/env_test[1]_include.cmake")
include("/root/repo/build/tests/block_cache_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/blocked_bloom_test[1]_include.cmake")
include("/root/repo/build/tests/memtable_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/merging_iterator_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/fpr_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/design_space_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_batch_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/lazy_leveling_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/value_log_test[1]_include.cmake")
include("/root/repo/build/tests/model_validation_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_features_test[1]_include.cmake")
include("/root/repo/build/tests/monkey_db_test[1]_include.cmake")
